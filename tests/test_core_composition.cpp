// Tests for footprint composition, natural cache partitions, and the
// shared-cache prediction (§IV, §V-A) — including validation against the
// owner-tagged shared-cache simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "cachesim/corun.hpp"
#include "core/composition.hpp"
#include "core/program_model.hpp"
#include "locality/footprint.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

TEST(Composition, SingletonGroupFootprintIsOwnFootprint) {
  ProgramModel m = model_of("solo", make_zipf(20000, 150, 0.9, 41), 1.5, 200);
  CoRunGroup g({&m});
  for (double w : {10.0, 100.0, 5000.0})
    EXPECT_NEAR(g.footprint(w), m.fp(w), 1e-12);
}

TEST(Composition, RateSharesNormalize) {
  ProgramModel a = model_of("a", make_cyclic(1000, 10), 3.0, 50);
  ProgramModel b = model_of("b", make_cyclic(1000, 10), 1.0, 50);
  CoRunGroup g({&a, &b});
  auto shares = g.rate_shares();
  EXPECT_NEAR(shares[0], 0.75, 1e-12);
  EXPECT_NEAR(shares[1], 0.25, 1e-12);
}

TEST(Composition, GroupFootprintIsSumOfStretched) {
  ProgramModel a = model_of("a", make_uniform(20000, 100, 42), 1.0, 200);
  ProgramModel b = model_of("b", make_uniform(20000, 100, 43), 1.0, 200);
  CoRunGroup g({&a, &b});
  // Equal rates: each contributes fp(w/2).
  for (double w : {100.0, 1000.0, 10000.0})
    EXPECT_NEAR(g.footprint(w), a.fp(w / 2) + b.fp(w / 2), 1e-9);
}

TEST(Composition, WindowForFootprintInverts) {
  ProgramModel a = model_of("a", make_uniform(30000, 120, 44), 1.0, 200);
  ProgramModel b = model_of("b", make_zipf(30000, 200, 0.8, 45), 2.0, 200);
  CoRunGroup g({&a, &b});
  double w = g.window_for_footprint(150.0);
  EXPECT_NEAR(g.footprint(w), 150.0, 0.01);
}

TEST(Composition, WindowSaturatesWhenCacheExceedsData) {
  ProgramModel a = model_of("a", make_cyclic(5000, 20), 1.0, 100);
  ProgramModel b = model_of("b", make_cyclic(5000, 30), 1.0, 100);
  CoRunGroup g({&a, &b});
  auto occ = natural_partition(g, 100.0);
  // Only 50 blocks exist in total.
  EXPECT_NEAR(occ[0], 20.0, 0.5);
  EXPECT_NEAR(occ[1], 30.0, 0.5);
}

TEST(NaturalPartition, OccupanciesSumToCacheSize) {
  ProgramModel a = model_of("a", make_zipf(40000, 300, 0.9, 46), 1.0, 400);
  ProgramModel b = model_of("b", make_uniform(40000, 250, 47), 2.0, 400);
  ProgramModel c = model_of("c", make_hot_cold(40000, 30, 300, 0.6, 48), 1.5,
                            400);
  CoRunGroup g({&a, &b, &c});
  auto occ = natural_partition(g, 300.0);
  double total = std::accumulate(occ.begin(), occ.end(), 0.0);
  EXPECT_NEAR(total, 300.0, 0.5);
}

TEST(NaturalPartition, SymmetricProgramsSplitEvenly) {
  // Identical behaviour and rates -> equal occupancies.
  ProgramModel a = model_of("a", make_uniform(30000, 200, 49), 1.0, 300);
  ProgramModel b = model_of("b", make_uniform(30000, 200, 49), 1.0, 300);
  CoRunGroup g({&a, &b});
  auto occ = natural_partition(g, 200.0);
  EXPECT_NEAR(occ[0], occ[1], 1e-6);
  EXPECT_NEAR(occ[0], 100.0, 1.0);
}

TEST(NaturalPartition, HigherRateGetsMoreCache) {
  Trace t = make_uniform(30000, 200, 50);
  ProgramModel fast = model_of("fast", t, 4.0, 300);
  ProgramModel slow = model_of("slow", t, 1.0, 300);
  CoRunGroup g({&fast, &slow});
  auto occ = natural_partition(g, 150.0);
  EXPECT_GT(occ[0], occ[1] * 1.5);
}

TEST(NaturalPartition, IntegerizeConservesCapacity) {
  std::vector<double> occ = {10.4, 20.35, 33.25};
  auto alloc = integerize_partition(occ, 64);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 64u);
  EXPECT_NEAR(static_cast<double>(alloc[0]), 10.4, 1.0);
  EXPECT_NEAR(static_cast<double>(alloc[1]), 20.35, 1.0);
  EXPECT_NEAR(static_cast<double>(alloc[2]), 33.25, 1.0);
}

TEST(NaturalPartition, IntegerizeHandlesShortfall) {
  // Fractional sum (30) far below capacity: leftovers go somewhere, total
  // must still be the full capacity.
  std::vector<double> occ = {10.0, 20.0};
  auto alloc = integerize_partition(occ, 50);
  EXPECT_EQ(alloc[0] + alloc[1], 50u);
  EXPECT_GE(alloc[1], 20u);
}

TEST(Prediction, GroupMissRatioWeightsByRate) {
  ProgramModel a = model_of("a", make_cyclic(1000, 10), 3.0, 50);
  ProgramModel b = model_of("b", make_cyclic(1000, 10), 1.0, 50);
  CoRunGroup g({&a, &b});
  double mr = group_miss_ratio(g, {0.4, 0.8});
  EXPECT_NEAR(mr, 0.75 * 0.4 + 0.25 * 0.8, 1e-12);
}

TEST(Prediction, DirectAndOccupancyRoutesAgree) {
  ProgramModel a = model_of("a", make_zipf(60000, 250, 0.9, 51), 1.0, 400);
  ProgramModel b = model_of("b", make_uniform(60000, 200, 52), 2.0, 400);
  CoRunGroup g({&a, &b});
  for (double c : {100.0, 200.0, 300.0}) {
    double via_occ =
        group_miss_ratio(g, predict_shared_miss_ratios(g, c));
    double direct = predict_group_miss_ratio_direct(g, c);
    // The routes differ by interpolation grain (dense per-program MRCs vs
    // the downsampled group footprint), so agreement is approximate.
    EXPECT_NEAR(via_occ, direct, 0.03) << "C=" << c;
  }
}

// Validation (§VII-C): the composed prediction must track the owner-tagged
// shared-cache simulator, both in occupancy (NCP) and per-program miss
// ratio (NPA), for random-phase workloads.
class NpaValidationProperty : public ::testing::TestWithParam<int> {};

TEST_P(NpaValidationProperty, PredictionTracksSimulation) {
  std::uint64_t seed = 60 + static_cast<std::uint64_t>(GetParam());
  Trace ta = make_zipf(60000, 220, 0.85, seed);
  Trace tb = make_hot_cold(60000, 25, 260, 0.65, seed + 1000);
  double rate_a = 1.0 + 0.5 * GetParam();
  ProgramModel a = model_of("a", ta, rate_a, 400);
  ProgramModel b = model_of("b", tb, 1.0, 400);
  CoRunGroup g({&a, &b});

  const std::size_t C = 180;
  auto predicted_occ = natural_partition(g, static_cast<double>(C));
  auto predicted_mr = predict_shared_miss_ratios(g, static_cast<double>(C));

  InterleavedTrace mix =
      interleave_proportional({ta, tb}, {rate_a, 1.0}, 400000);
  CoRunOptions opt;
  opt.warmup = 100000;
  opt.occupancy_period = 64;
  CoRunResult sim = simulate_shared(mix, C, opt);

  ASSERT_EQ(sim.mean_occupancy.size(), 2u);
  // NCP: occupancies within a few blocks.
  EXPECT_NEAR(sim.mean_occupancy[0], predicted_occ[0], 0.12 * C);
  EXPECT_NEAR(sim.mean_occupancy[1], predicted_occ[1], 0.12 * C);
  // NPA: per-program miss ratios within a couple of points.
  EXPECT_NEAR(sim.miss_ratio(0), predicted_mr[0], 0.04);
  EXPECT_NEAR(sim.miss_ratio(1), predicted_mr[1], 0.04);
}

INSTANTIATE_TEST_SUITE_P(Pairs, NpaValidationProperty,
                         ::testing::Range(0, 4));

TEST(Composition, RejectsEmptyGroup) {
  EXPECT_THROW(CoRunGroup({}), CheckError);
}

}  // namespace
}  // namespace ocps
