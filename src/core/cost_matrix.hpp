// Flat cost-curve storage for the optimizers.
//
// Every optimizer in this library consumes "cost curves": for program i
// and allocation c in 0..capacity, cost[i][c] is the (lower-is-better)
// cost of giving program i exactly c units — typically the rate-weighted
// miss ratio. The seed API passed std::vector<std::vector<double>>,
// which scatters rows across the heap and forced the group sweep to copy
// member rows for every one of the 1,820 co-run groups.
//
// CostMatrix stores all rows in one contiguous row-major block (rows ×
// (capacity+1) doubles). CostMatrixView is the non-owning parameter type
// the optimizers take; it has two shapes behind one row() accessor:
//
//   * contiguous — a window over a CostMatrix (or any flat buffer);
//   * gathered   — an array of row pointers, so a co-run group can view
//     its members' rows inside the full program table with zero copies
//     (and legacy vector<vector> rows can be viewed without conversion).
//
// Views are trivially copyable and never own memory; the caller keeps
// the backing rows (and, for gathered views, the pointer array) alive.
#pragma once

#include <cstddef>
#include <vector>

#include "locality/mrc.hpp"

namespace ocps {

/// Non-owning view of `rows` cost curves over allocations 0..cols-1.
class CostMatrixView {
 public:
  CostMatrixView() = default;

  /// Contiguous row-major block: row i starts at data + i*cols.
  CostMatrixView(const double* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  /// Gathered rows: row i is row_ptrs[i] (each at least cols doubles).
  /// The pointer array must outlive the view.
  CostMatrixView(const double* const* row_ptrs, std::size_t rows,
                 std::size_t cols)
      : row_ptrs_(row_ptrs), rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Largest allocation represented (cols() - 1).
  std::size_t capacity() const { return cols_ == 0 ? 0 : cols_ - 1; }
  bool empty() const { return rows_ == 0; }

  const double* row(std::size_t i) const {
    return row_ptrs_ ? row_ptrs_[i] : data_ + i * cols_;
  }
  double operator()(std::size_t i, std::size_t c) const { return row(i)[c]; }

 private:
  const double* data_ = nullptr;
  const double* const* row_ptrs_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Owning flat row-major cost matrix: rows × (capacity+1), zero-filled.
class CostMatrix {
 public:
  CostMatrix() = default;
  CostMatrix(std::size_t rows, std::size_t capacity)
      : data_(rows * (capacity + 1), 0.0), rows_(rows),
        cols_(capacity + 1) {}

  /// Copies nested rows into flat storage. Every row must have at least
  /// capacity+1 entries (checked).
  static CostMatrix from_rows(const std::vector<std::vector<double>>& rows,
                              std::size_t capacity);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t capacity() const { return cols_ == 0 ? 0 : cols_ - 1; }
  bool empty() const { return rows_ == 0; }

  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }
  double& operator()(std::size_t i, std::size_t c) { return row(i)[c]; }
  double operator()(std::size_t i, std::size_t c) const { return row(i)[c]; }

  /// View of the whole matrix.
  CostMatrixView view() const {
    return CostMatrixView(data_.data(), rows_, cols_);
  }

  /// Gathered view of the given rows (e.g. a co-run group's members in
  /// the full program table). `ptr_storage` receives the row pointers and
  /// must outlive the returned view; it is resized to `count`.
  template <typename Index>
  CostMatrixView gather(const Index* members, std::size_t count,
                        std::vector<const double*>& ptr_storage) const {
    ptr_storage.resize(count);
    for (std::size_t i = 0; i < count; ++i)
      ptr_storage[i] = row(static_cast<std::size_t>(members[i]));
    return CostMatrixView(ptr_storage.data(), count, cols_);
  }

 private:
  std::vector<double> data_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Cost curves cost_i(c) = weight_i * mr_i(c) in flat storage. With
/// weight_i = access-rate share this makes Σ cost the group miss ratio
/// (Eq. 14's f_i weighting). Flat replacement for weighted_cost_curves.
CostMatrix weighted_cost_matrix(
    const std::vector<const MissRatioCurve*>& mrcs,
    const std::vector<double>& weights, std::size_t capacity);

}  // namespace ocps
