// Tests for the performance model (slowdown / ANTT / STP) and phase-aware
// dynamic repartitioning.
#include <gtest/gtest.h>

#include <algorithm>

#include "cachesim/corun.hpp"
#include "core/dp_partition.hpp"
#include "core/performance.hpp"
#include "core/phase_aware.hpp"
#include "locality/phases.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

TEST(Performance, SoloRunHasUnitSlowdown) {
  ProgramModel m = model_of("solo", make_zipf(20000, 100, 1.0, 81), 1.0, 128);
  CoRunGroup g({&m});
  std::vector<double> mr = {m.mrc.ratio(128)};
  PerfMetrics perf = performance_metrics(g, mr, 128);
  EXPECT_NEAR(perf.slowdown[0], 1.0, 1e-12);
  EXPECT_NEAR(perf.antt, 1.0, 1e-12);
  EXPECT_NEAR(perf.stp, 1.0, 1e-12);
}

TEST(Performance, HigherMissRatioMeansHigherSlowdown) {
  ProgramModel a = model_of("a", make_zipf(20000, 150, 0.9, 82), 1.0, 128);
  ProgramModel b = model_of("b", make_cyclic(20000, 90), 1.0, 128);
  CoRunGroup g({&a, &b});
  PerfMetrics tight = performance_metrics(g, {0.30, 0.30}, 128);
  PerfMetrics loose = performance_metrics(g, {0.05, 0.05}, 128);
  EXPECT_GT(tight.antt, loose.antt);
  EXPECT_LT(tight.stp, loose.stp);
  EXPECT_LE(loose.stp, 2.0 + 1e-12);  // P programs: STP <= P
}

TEST(Performance, MissPenaltyScalesTheEffect) {
  ProgramModel m = model_of("m", make_zipf(20000, 150, 0.9, 83), 1.0, 128);
  CoRunGroup g({&m});
  LatencyModel cheap{1.0, 2.0};
  LatencyModel dear{1.0, 200.0};
  PerfMetrics p_cheap = performance_metrics(g, {0.5}, 128, cheap);
  PerfMetrics p_dear = performance_metrics(g, {0.5}, 128, dear);
  EXPECT_GT(p_dear.antt, p_cheap.antt);
}

TEST(Performance, SlowdownCostCurvesDriveTheDp) {
  // Minimizing Σ slowdown-costs is a valid DP objective (the paper: "any
  // cost function"); the result must allocate everything and have cost
  // >= P (each term is >= 1 at full cache by definition).
  ProgramModel a = model_of("a", make_zipf(30000, 200, 0.9, 84), 2.0, 200);
  ProgramModel b = model_of("b", make_cyclic(30000, 120), 1.0, 200);
  CoRunGroup g({&a, &b});
  auto cost = slowdown_cost_curves(g, 200);
  DpResult dp =
      optimize_partition(CostMatrix::from_rows(cost, 200).view(), 200);
  ASSERT_TRUE(dp.feasible);
  EXPECT_EQ(dp.alloc[0] + dp.alloc[1], 200u);
  EXPECT_GE(dp.objective_value, 2.0 - 1e-9);
  // Sanity: per-unit costs never below 1 (nothing runs faster than solo
  // with the full cache — LRU inclusion).
  for (const auto& row : cost)
    for (double v : row) EXPECT_GE(v, 1.0 - 1e-9);
}

TEST(PhaseAware, ProfileSplitsEvenly) {
  std::vector<Trace> traces = {make_cyclic(12000, 30),
                               make_cyclic(12000, 50)};
  EpochProfile prof = profile_epochs(traces, {1.0, 1.0}, 4, 64);
  EXPECT_EQ(prof.num_epochs(), 4u);
  EXPECT_EQ(prof.epoch_length, 3000u);
  for (const auto& epoch : prof.epoch_models) {
    ASSERT_EQ(epoch.size(), 2u);
    EXPECT_EQ(epoch[0].distinct, 30u);
    EXPECT_EQ(epoch[1].distinct, 50u);
  }
}

TEST(PhaseAware, RejectsRaggedInput) {
  std::vector<Trace> traces = {make_cyclic(100, 5), make_cyclic(99, 5)};
  EXPECT_THROW(profile_epochs(traces, {1.0, 1.0}, 2, 16), CheckError);
}

TEST(PhaseAware, PlanAdaptsToAntiphaseWorkingSets) {
  // Program 0: big set then small; program 1: small then big. The
  // per-epoch optimizer should flip the split between epochs.
  const std::size_t phase = 6000;
  std::vector<Phase> big_small = {{phase, 80, 0, false},
                                  {phase, 8, 0, false}};
  std::vector<Phase> small_big = {{phase, 8, 0, false},
                                  {phase, 80, 0, false}};
  std::vector<Trace> traces = {make_phased(big_small, 1),
                               make_phased(small_big, 1)};
  EpochProfile prof = profile_epochs(traces, {1.0, 1.0}, 2, 96);
  PhaseAwarePlan plan = phase_aware_optimize(prof, 96);
  ASSERT_EQ(plan.alloc_per_epoch.size(), 2u);
  EXPECT_GT(plan.alloc_per_epoch[0][0], plan.alloc_per_epoch[0][1]);
  EXPECT_LT(plan.alloc_per_epoch[1][0], plan.alloc_per_epoch[1][1]);
}

TEST(PhaseAware, DynamicBeatsStaticOnAntiphase) {
  const std::size_t phase = 4000, reps = 6;
  std::vector<Phase> big_small = {{phase, 80, 0, false},
                                  {phase, 8, 0, false}};
  std::vector<Phase> small_big = {{phase, 8, 0, false},
                                  {phase, 80, 0, false}};
  std::vector<Trace> traces = {make_phased(big_small, reps),
                               make_phased(small_big, reps)};
  const std::size_t n_each = phase * 2 * reps;
  InterleavedTrace mix =
      interleave_proportional(traces, {1.0, 1.0}, n_each * 2);
  const std::size_t C = 96;

  // Static best (by symmetry, the even split).
  CoRunResult statics = simulate_partitioned(mix, {C / 2, C / 2});

  // Phase-aware plan with one epoch per phase.
  EpochProfile prof = profile_epochs(traces, {1.0, 1.0}, 2 * reps, C);
  PhaseAwarePlan plan = phase_aware_optimize(prof, C);
  CoRunResult dynamic = simulate_dynamic_partitioned(mix, plan);

  EXPECT_LT(dynamic.group_miss_ratio(), statics.group_miss_ratio() * 0.8);
  // And it should be competitive with free-for-all sharing (the Fig. 1
  // advantage recovered by repartitioning).
  CoRunResult shared = simulate_shared(mix, C);
  EXPECT_LT(dynamic.group_miss_ratio(),
            shared.group_miss_ratio() + 0.02);
}

TEST(PhaseAware, DynamicMatchesStaticOnStationaryWorkloads) {
  std::vector<Trace> traces = {make_uniform(24000, 60, 85),
                               make_uniform(24000, 60, 86)};
  InterleavedTrace mix = interleave_proportional(traces, {1.0, 1.0}, 48000);
  const std::size_t C = 80;
  EpochProfile prof = profile_epochs(traces, {1.0, 1.0}, 6, C);
  PhaseAwarePlan plan = phase_aware_optimize(prof, C);
  CoRunResult dynamic = simulate_dynamic_partitioned(mix, plan);
  CoRunResult statics = simulate_partitioned(mix, {C / 2, C / 2});
  EXPECT_NEAR(dynamic.group_miss_ratio(), statics.group_miss_ratio(), 0.05);
}

TEST(PhaseAware, VariableEpochsFromDetectedBoundaries) {
  // Asymmetric phases (60%/40% of the run): uniform epochs straddle the
  // switch; boundaries from the phase detector land on it exactly.
  const std::size_t n = 50000;
  std::vector<Phase> a_phases = {{30000, 90, 0, false},
                                 {20000, 8, 0, false}};
  std::vector<Phase> b_phases = {{30000, 8, 0, false},
                                 {20000, 90, 0, false}};
  std::vector<Trace> traces = {make_phased(a_phases, 1),
                               make_phased(b_phases, 1)};
  const std::size_t C = 104;

  // Merge detected boundaries from both programs.
  PhaseDetectorConfig det;
  det.window = 2000;
  std::vector<std::size_t> boundaries;
  for (const auto& t : traces) {
    for (const auto& seg : detect_phases(t, det))
      if (seg.begin > 0) boundaries.push_back(seg.begin);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  ASSERT_GE(boundaries.size(), 1u);
  EXPECT_NEAR(static_cast<double>(boundaries[0]), 30000.0, 2500.0);

  VariableEpochProfile prof =
      profile_epochs_at(traces, {1.0, 1.0}, boundaries, C);
  VariablePhasePlan plan = phase_aware_optimize_at(prof, C);
  ASSERT_EQ(plan.alloc_per_epoch.size(), boundaries.size() + 1);
  // First epoch favours program 0's 90-block set; last favours program 1.
  EXPECT_GT(plan.alloc_per_epoch.front()[0],
            plan.alloc_per_epoch.front()[1]);
  EXPECT_LT(plan.alloc_per_epoch.back()[0], plan.alloc_per_epoch.back()[1]);

  InterleavedTrace mix =
      interleave_proportional(traces, {1.0, 1.0}, n * 2);
  CoRunResult dynamic = simulate_variable_partitioned(mix, plan, 2);
  CoRunResult statics = simulate_partitioned(mix, {C / 2, C / 2});
  EXPECT_LT(dynamic.group_miss_ratio(), statics.group_miss_ratio() * 0.8);
}

TEST(PhaseAware, VariableProfileRejectsBadBoundaries) {
  std::vector<Trace> traces = {make_cyclic(1000, 5)};
  EXPECT_THROW(profile_epochs_at(traces, {1.0}, {500, 400}, 16),
               CheckError);
  EXPECT_THROW(profile_epochs_at(traces, {1.0}, {1000}, 16), CheckError);
}

TEST(PhaseAware, SimulatorChecksPlanShape) {
  InterleavedTrace mix = interleave_proportional(
      {make_cyclic(100, 5), make_cyclic(100, 5)}, {1.0, 1.0}, 100);
  PhaseAwarePlan empty;
  EXPECT_THROW(simulate_dynamic_partitioned(mix, empty), CheckError);
  PhaseAwarePlan ragged;
  ragged.alloc_per_epoch = {{10, 10}, {10}};
  EXPECT_THROW(simulate_dynamic_partitioned(mix, ragged), CheckError);
}

}  // namespace
}  // namespace ocps
