file(REMOVE_RECURSE
  "libocps_trace.a"
)
