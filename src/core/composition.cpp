#include "core/composition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace ocps {

CoRunGroup::CoRunGroup(std::vector<const ProgramModel*> m)
    : members(std::move(m)) {
  OCPS_CHECK(!members.empty(), "co-run group must be non-empty");
  for (std::size_t i = 0; i < members.size(); ++i) {
    OCPS_CHECK(members[i] != nullptr, "null member at index " << i);
    OCPS_CHECK(members[i]->access_rate > 0.0,
               "member " << i << " has non-positive access rate");
  }
}

std::vector<double> CoRunGroup::rate_shares() const {
  double total = 0.0;
  for (const auto* m : members) total += m->access_rate;
  std::vector<double> shares(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    shares[i] = members[i]->access_rate / total;
  return shares;
}

double CoRunGroup::footprint(double w) const {
  auto shares = rate_shares();
  double sum = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i)
    sum += members[i]->fp(w * shares[i]);
  return sum;
}

double CoRunGroup::window_for_footprint(double target) const {
  // Singleton group: the piecewise-linear inverse is exact — no bisection.
  if (members.size() == 1) return members[0]->footprint.inverse(target);

  // The group footprint is non-decreasing in w; bracket then bisect.
  // Upper bracket: the window at which every member has seen its whole
  // trace (group footprint saturated).
  auto shares = rate_shares();
  double w_hi = 1.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    double member_max = members[i]->footprint.x_max() / shares[i];
    w_hi = std::max(w_hi, member_max);
  }
  if (footprint(w_hi) <= target) return w_hi;  // saturated below target
  double lo = 0.0, hi = w_hi;
  // Bisect to absolute sub-access precision; occupancies feed miss-ratio
  // interpolation, where window error translates to ratio error near
  // cliffs, so this is deliberately tight.
  for (int iter = 0; iter < 200 && hi - lo > 1e-9; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (footprint(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::vector<double> natural_partition(const CoRunGroup& group,
                                      double cache_size) {
  OCPS_CHECK(cache_size >= 0.0, "negative cache size");
  auto shares = group.rate_shares();
  double w = group.window_for_footprint(cache_size);
  std::vector<double> occupancy(group.size());
  for (std::size_t i = 0; i < group.size(); ++i)
    occupancy[i] = group[i].fp(w * shares[i]);
  return occupancy;
}

std::vector<std::size_t> integerize_partition(const std::vector<double>& c,
                                              std::size_t capacity) {
  OCPS_CHECK(!c.empty(), "empty partition");
  double total = std::accumulate(c.begin(), c.end(), 0.0);
  std::vector<std::size_t> alloc(c.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders(c.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    OCPS_CHECK(c[i] >= -1e-9, "negative occupancy at " << i);
    double v = std::max(c[i], 0.0);
    // Scale up only if the fractional sum exceeds the capacity (it can by
    // rounding); otherwise keep the natural sizes.
    if (total > static_cast<double>(capacity) && total > 0.0)
      v *= static_cast<double>(capacity) / total;
    alloc[i] = static_cast<std::size_t>(v);
    remainders[i] = {v - static_cast<double>(alloc[i]), i};
    assigned += alloc[i];
  }
  OCPS_CHECK(assigned <= capacity, "rounded allocation exceeds capacity");
  // Hand out leftover units by largest remainder, then (if the fractional
  // sum was short of capacity) pile the rest on the largest occupant.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t leftover = capacity - assigned;
  for (std::size_t k = 0; k < remainders.size() && leftover > 0; ++k) {
    if (remainders[k].first <= 0.0) break;
    ++alloc[remainders[k].second];
    --leftover;
  }
  if (leftover > 0) {
    std::size_t biggest =
        static_cast<std::size_t>(std::max_element(c.begin(), c.end()) -
                                 c.begin());
    alloc[biggest] += leftover;
  }
  return alloc;
}

std::vector<double> predict_shared_miss_ratios(const CoRunGroup& group,
                                               double cache_size) {
  auto occupancy = natural_partition(group, cache_size);
  std::vector<double> mr(group.size());
  for (std::size_t i = 0; i < group.size(); ++i)
    mr[i] = group[i].mrc.ratio_at(occupancy[i]);
  return mr;
}

double group_miss_ratio(const CoRunGroup& group,
                        const std::vector<double>& per_program_mr) {
  OCPS_CHECK(per_program_mr.size() == group.size(), "size mismatch");
  auto shares = group.rate_shares();
  double mr = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i)
    mr += shares[i] * per_program_mr[i];
  return mr;
}

double predict_group_miss_ratio_direct(const CoRunGroup& group,
                                       double cache_size) {
  double combined = 0.0;
  double cold_weighted = 0.0;
  auto shares = group.rate_shares();
  for (std::size_t i = 0; i < group.size(); ++i) {
    combined += static_cast<double>(group[i].distinct);
    cold_weighted += shares[i] * static_cast<double>(group[i].distinct) /
                     static_cast<double>(group[i].trace_length);
  }
  if (cache_size >= combined) return cold_weighted;
  double w = group.window_for_footprint(cache_size);
  double mr = group.footprint(w + 1.0) - cache_size;
  mr = std::clamp(mr, 0.0, 1.0);
  return std::max(mr, cold_weighted);
}

}  // namespace ocps
