// ASCII footprint files.
//
// The paper's optimizer "reads 4 footprints from 4 files. There are 16
// footprint files for the 16 programs" (§VII-A), stored in ASCII. We mirror
// that: one file per program holding the program's name, access rate,
// trace length, distinct-block count, and (window, footprint) knots —
// downsampled, which is why the paper's files are a few hundred KB rather
// than the full trace length.
#pragma once

#include <string>

#include "locality/footprint.hpp"
#include "util/curve.hpp"

namespace ocps {

/// Everything the composition/optimization pipeline needs about a program.
struct FootprintFile {
  std::string name;
  double access_rate = 1.0;        ///< accesses per unit time (§IV)
  std::uint64_t trace_length = 0;  ///< n
  std::uint64_t distinct = 0;      ///< m
  PiecewiseLinear footprint;       ///< fp(w) knots
};

/// Writes the footprint file. `max_knots` downsamples the curve (0 keeps
/// every knot). Throws CheckError on IO failure.
void save_footprint_file(const FootprintFile& data, const std::string& path,
                         std::size_t max_knots = 4096);

/// Reads a file written by save_footprint_file.
FootprintFile load_footprint_file(const std::string& path);

/// Builds the in-memory record from a profiled curve.
FootprintFile make_footprint_file(const std::string& name, double access_rate,
                                  const FootprintCurve& fp,
                                  std::size_t max_knots = 4096);

}  // namespace ocps
