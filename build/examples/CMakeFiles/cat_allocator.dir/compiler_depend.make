# Empty compiler generated dependencies file for cat_allocator.
# This may be replaced when dependencies are built.
