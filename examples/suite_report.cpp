// Example: profile the 16-program SPEC-like suite and print each program's
// locality portrait — distinct data size, footprint growth, miss ratio at
// key cache sizes (including the equal share C/4), convexity of the MRC,
// and the gainer/loser prediction for sharing.
//
// This is the tool you run first when adapting the library to your own
// workloads: it shows at a glance which programs are streaming, cliffed,
// or cache-friendly, and therefore how they will behave under the
// optimizers.
#include <iostream>

#include "ocps.hpp"

using namespace ocps;

int main() {
  SuiteOptions options = suite_options_from_env();
  std::cout << "Profiling " << spec2006_suite().size() << " programs, "
            << options.trace_length << " accesses each, capacity "
            << options.capacity << " units...\n\n";
  Suite suite = build_spec2006_suite(options);

  const std::size_t C = options.capacity;
  const std::size_t equal = C / 4;

  TextTable t({"program", "rate", "m (blocks)", "mr(C/8)", "mr(C/4)",
               "mr(C/2)", "mr(C)", "convex?", "fp(1k)", "fp(100k)"});
  for (const auto& m : suite.models) {
    t.add_row({m.name, TextTable::num(m.access_rate, 1),
               std::to_string(m.distinct),
               TextTable::num(m.mrc.ratio(C / 8), 5),
               TextTable::num(m.mrc.ratio(equal), 5),
               TextTable::num(m.mrc.ratio(C / 2), 5),
               TextTable::num(m.mrc.ratio(C), 5),
               m.mrc.is_convex(1e-4) ? "yes" : "no",
               TextTable::num(m.fp(1000.0), 0),
               TextTable::num(m.fp(100000.0), 0)});
  }
  t.print(std::cout);

  std::cout << "\nmr(C/4) is each program's miss ratio under the Equal "
               "partition of a 4-program co-run (the paper's baseline). "
               "Non-convex MRCs are the ones that defeat STTW.\n";
  return 0;
}
