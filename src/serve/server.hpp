// Resident partition-service daemon (`ocps serve`).
//
// The batch CLI reloads profiles and rebuilds the DP on every invocation;
// a multi-tenant cache manager is instead deployed as a resident service
// that answers allocation queries online (Memshare, LFOC). This module is
// that layer: the daemon loads the workload suite's footprint/MRC
// profiles once, keeps the PR 3 batch engine warm (one PrefixDpSolver on
// the batching thread, the persistent ThreadPool for sweeps), and serves
// `partition` / `sweep` / `health` / `reload` requests over a Unix domain
// socket — and, with `--listen host:port`, a TCP listener sharing the
// same pipeline — speaking line-delimited JSON (serve/protocol.hpp).
//
// Request flow and the failure ladder:
//   * readers parse each line; malformed JSON → 400, never a crash;
//   * solver requests enter a bounded queue — admission control: when the
//     queue is full the request is shed immediately with 429 instead of
//     growing the backlog (load-shedding beats unbounded latency);
//   * the batching thread coalesces up to `max_batch` requests (waiting
//     at most `linger` after the first), sorts them for DP prefix reuse,
//     and answers each; per-request deadlines are honored cooperatively —
//     checked before each solve and per group inside the sweep loop — and
//     expired requests get 504;
//   * `reload` builds a complete candidate profile set first — every file
//     re-validated through the PR 1 sanitizer — and atomically swaps it
//     in only when every profile is good; any bad profile rejects the
//     whole reload with 422 and keeps the last-good set serving;
//   * on SIGTERM (`request_stop()`) the daemon stops accepting, drains
//     the queue answering every admitted request (zero in-flight loss),
//     then exits.
//
// Observability (obs registry, docs/serving.md lists all fields):
// serve.queue_depth gauge, serve.batch_size + serve.request_ns
// histograms, counters serve.requests / serve.shed /
// serve.deadline_exceeded / serve.malformed / serve.reloads /
// serve.reload_rejected / serve.batches. `health` reads the same
// numbers from the server's own atomics so it works with obs off.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_matrix.hpp"
#include "core/program_model.hpp"
#include "serve/protocol.hpp"
#include "util/result.hpp"

namespace ocps {
class NetFaultInjector;  // runtime/fault_injection.hpp
}

namespace ocps::obs {
class SloTracker;  // obs/slo.hpp
}

namespace ocps::serve {

/// Daemon knobs (CLI flags of `ocps serve` map 1:1 onto these).
struct ServeConfig {
  std::string socket_path;       ///< Unix socket path (required)
  /// Optional TCP listener sharing the same protocol + pipeline, as
  /// "host:port" (numeric IPv4 or "localhost"; port 0 = ephemeral, read
  /// back via Server::bound_listen_port()). Empty = Unix socket only.
  std::string listen_address;
  std::size_t capacity = 1024;   ///< default / maximum cache size in units
  std::size_t max_batch = 64;    ///< max solver requests per batch
  std::chrono::milliseconds linger{2};  ///< max wait to fill a batch
  std::size_t queue_capacity = 256;     ///< admission-control bound
  std::size_t threads = 0;       ///< sweep width (0 = auto, see SweepOptions)
  double default_deadline_ms = 0.0;  ///< per-request default; 0 = none

  /// Prometheus exposition over HTTP on 127.0.0.1. 0 = no listener;
  /// a positive value binds that port; -1 binds an ephemeral port (tests
  /// read the actual one back via Server::bound_metrics_port()).
  int metrics_port = 0;
  /// Slow-request log size: the K slowest answered/expired requests kept
  /// for the `slowlog` op. 0 disables the log.
  std::size_t slowlog_capacity = 32;
  /// Sliding window, in seconds, for the `serve.request_latency.window.*`
  /// percentile gauges.
  unsigned latency_window_s = 30;

  /// Declarative SLOs (0 = objective off). Evaluated as multi-window
  /// burn rates (obs/slo.hpp) on every answered solver request; exposed
  /// as `serve.slo.*` gauges and via the `slo` op (which, like
  /// `slowlog`, answers even with obs off).
  double slo_p99_ms = 0.0;       ///< p99 end-to-end latency target, ms
  double slo_availability = 0.0; ///< success-rate target, e.g. 0.999

  /// Decision-quality plane (obs/decision_log.hpp): every answered
  /// `partition` request is logged with its predicted miss ratios and a
  /// decision id the client can later `reconcile` with realized ratios.
  /// Like the SLO tracker, the log answers `decisions` even with obs
  /// off; drift *alerting* engages only when drift_threshold > 0.
  std::size_t decision_log_capacity = 128;
  double drift_alpha = 0.25;     ///< EWMA weight of the newest error
  double drift_threshold = 0.0;  ///< |error| EWMA breach level, 0 = off

  /// Hard cap on concurrently connected request clients (both
  /// transports). Connection 257 is accepted and immediately told 503 —
  /// an explicit refusal beats a kernel backlog timeout.
  std::size_t max_connections = 256;
  /// Per-connection I/O bound: a response write that cannot make
  /// progress for this long marks the connection broken, and a partial
  /// request line that stops growing for this long is answered 400 and
  /// the connection dropped. Slow peers must not pin daemon threads.
  std::chrono::milliseconds io_timeout{5000};

  /// Chaos seam: when set, the daemon consults this injector on every
  /// accept and every response write (see runtime/fault_injection.hpp).
  /// The injector must outlive the server. Production runs leave it null.
  const NetFaultInjector* net_faults = nullptr;

  /// Test seam: while *hold_batching is true the batching thread admits
  /// requests into the queue but does not drain it, making queue-full and
  /// deadline behaviour deterministic to test. Ignored during drain.
  const std::atomic<bool>* hold_batching = nullptr;
};

/// Immutable snapshot of the profiles the daemon serves. Swapped
/// atomically by `reload`; in-flight batches keep the set they started
/// with via shared_ptr.
struct ProfileSet {
  std::vector<ProgramModel> models;
  CostMatrix unit_costs;  ///< rate-weighted miss counts, capacity columns
  std::uint64_t version = 0;

  /// Index of the named program, or npos.
  std::size_t index_of(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Builds a profile set from models (validates against `capacity`).
std::shared_ptr<const ProfileSet> make_profile_set(
    std::vector<ProgramModel> models, std::size_t capacity,
    std::uint64_t version);

/// Loads + sanitizes one footprint file into a ProgramModel. Every
/// failure (unreadable file, malformed header, knots the PR 1 sanitizer
/// cannot repair) comes back as an Error — the reload path must never
/// throw on operator input.
Result<ProgramModel> load_profile(const std::string& path,
                                  std::size_t capacity);

/// The daemon. Construction validates config and profiles; start() binds
/// the socket and spawns the accept/reader/batching threads; stop()
/// drains and joins everything. A Server is single-use: once stopped it
/// cannot be restarted.
class Server {
 public:
  /// Throws CheckError on invalid config (empty socket path, zero
  /// capacity/queue) — misconfiguration is a caller bug, unlike anything
  /// arriving over the socket.
  Server(ServeConfig config, std::vector<ProgramModel> models);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens on the socket and starts the service threads.
  /// Returns an Error (kIoError) when the socket cannot be bound.
  Result<bool> start();

  /// Signals shutdown. Async-signal-safe (only stores an atomic): the
  /// SIGTERM handler of `ocps serve` calls exactly this. Threads notice
  /// within one poll interval (~50 ms) and begin the drain.
  void request_stop() noexcept { stopping_.store(true); }

  /// Blocks until request_stop() is observed and the drain completes,
  /// then joins every thread and removes the socket file. Idempotent.
  void stop();

  /// Blocks until request_stop() has been called (the `ocps serve` main
  /// thread parks here), without initiating the drain itself.
  void wait_until_stop_requested() const;

  bool stop_requested() const { return stopping_.load(); }
  const ServeConfig& config() const { return config_; }

  /// Port the Prometheus HTTP listener actually bound (relevant when the
  /// config asked for an ephemeral port); 0 when the listener is off.
  int bound_metrics_port() const { return http_port_.load(); }

  /// Port the TCP request listener actually bound (relevant when
  /// listen_address asked for port 0); 0 when TCP is off.
  int bound_listen_port() const { return tcp_port_.load(); }

  /// Requests currently admitted but not yet batched.
  std::size_t queue_depth() const;

  /// Current profile-set version (bumps on successful reload).
  std::uint64_t profile_version() const;

  /// Plain-data counters mirrored into the obs registry; `health`
  /// responses are assembled from these so they work with obs off.
  struct Counters {
    std::uint64_t requests = 0;     ///< lines received (any op)
    std::uint64_t answered = 0;     ///< solver requests answered ok
    std::uint64_t shed = 0;         ///< 429 admission rejections
    std::uint64_t deadline_exceeded = 0;  ///< 504 responses
    std::uint64_t malformed = 0;    ///< 400 parse/validation failures
    std::uint64_t batches = 0;      ///< solver batches executed
    std::uint64_t reloads = 0;      ///< successful profile swaps
    std::uint64_t reload_rejected = 0;  ///< 422 kept-last-good reloads
  };
  Counters counters() const;

 private:
  struct Connection;
  struct SolverState;

  /// One admitted solver request waiting in the batching queue.
  struct Pending {
    Request req;
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point enqueued;
    /// time_point::max() when the request has no deadline.
    std::chrono::steady_clock::time_point deadline;
    /// Stage-attribution stamps (respond() turns these into the
    /// queue_wait / batch_linger / solve / serialize / network stage
    /// histograms): when the batcher started collecting the batch this
    /// request rode in, when it stopped lingering, when this request's
    /// solve began, and when response serialization began.
    std::chrono::steady_clock::time_point collect_start;
    std::chrono::steady_clock::time_point collect_end;
    std::chrono::steady_clock::time_point solve_start;
    std::chrono::steady_clock::time_point serialize_start;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void batch_loop();
  void http_loop();

  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void handle_health(const std::shared_ptr<Connection>& conn,
                     const Request& req);
  void handle_reload(const std::shared_ptr<Connection>& conn,
                     const Request& req);
  void handle_metrics(const std::shared_ptr<Connection>& conn,
                      const Request& req);
  void handle_slowlog(const std::shared_ptr<Connection>& conn,
                      const Request& req);
  void handle_trace(const std::shared_ptr<Connection>& conn,
                    const Request& req);
  void handle_slo(const std::shared_ptr<Connection>& conn,
                  const Request& req);
  void handle_decisions(const std::shared_ptr<Connection>& conn,
                        const Request& req);
  void handle_reconcile(const std::shared_ptr<Connection>& conn,
                        const Request& req);
  /// Recomputes the derived p50/p95/p99 gauges (lifetime, windowed, and
  /// per-stage) plus the serve.slo.* burn-rate gauges; called before
  /// every scrape.
  void refresh_latency_gauges();
  void process_batch(std::vector<Pending>& batch, SolverState& solver);
  void answer_partition(Pending& p,
                        const std::shared_ptr<const ProfileSet>& profiles,
                        SolverState& solver);
  void answer_sweep(Pending& p, const ProfileSet& profiles);
  void respond(Pending& p, const std::string& line, bool answered);

  std::shared_ptr<const ProfileSet> profiles() const;

  ServeConfig config_;
  int listen_fd_ = -1;
  int tcp_fd_ = -1;
  std::atomic<int> tcp_port_{0};
  /// flock-held lock file guarding the Unix socket path: two daemons
  /// racing the stale-socket reclaim cannot both win the lock, so one
  /// gets a clear "in use by a live daemon" error instead of silently
  /// stealing the path.
  int lock_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};
  /// Set by stop() once accept + readers are joined: nothing can enqueue
  /// any more, so the batching thread may exit when the queue drains.
  std::atomic<bool> producers_done_{false};

  mutable std::mutex profiles_mutex_;
  std::shared_ptr<const ProfileSet> profiles_;
  std::mutex reload_mutex_;  ///< serializes reload requests

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;

  std::thread accept_thread_;
  std::thread batch_thread_;

  int http_fd_ = -1;
  std::atomic<int> http_port_{0};
  std::thread http_thread_;

  std::chrono::steady_clock::time_point started_at_;

  struct AtomicCounters;
  std::unique_ptr<AtomicCounters> counters_;

  /// Windowed latency histogram + slow-request log (see server.cpp).
  struct Telemetry;
  std::unique_ptr<Telemetry> telemetry_;

  /// Burn-rate SLO evaluation (obs/slo.hpp); always constructed, inert
  /// when no objective is configured. Independent of the obs registry so
  /// the `slo` op answers even in an OCPS_OBS_DISABLED build.
  std::unique_ptr<obs::SloTracker> slo_;

  /// Decision audit trail + drift detector (obs/decision_log.hpp); like
  /// slo_, always constructed and registry-independent, so `decisions`
  /// answers with obs off. The batching thread records, `reconcile`
  /// attaches realized ratios, scrapes publish the dp.decision.* /
  /// dp.drift.* gauges.
  std::unique_ptr<obs::DecisionLog> decisions_;
  std::unique_ptr<obs::DriftDetector> drift_;
  /// Profile-set version stamped on the previous decision; the first
  /// decision after a version bump records trigger=reload.
  std::atomic<std::uint64_t> last_decision_version_{0};
};

}  // namespace ocps::serve
