file(REMOVE_RECURSE
  "CMakeFiles/test_shards.dir/test_shards.cpp.o"
  "CMakeFiles/test_shards.dir/test_shards.cpp.o.d"
  "test_shards"
  "test_shards.pdb"
  "test_shards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
