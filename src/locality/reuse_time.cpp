#include "locality/reuse_time.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace ocps {

ReuseProfile profile_reuse(const Trace& trace) {
  ReuseProfile p;
  p.trace_length = trace.length();
  p.freq.assign(p.trace_length + 2, 0);
  p.first_count.assign(p.trace_length + 2, 0);
  p.last_count.assign(p.trace_length + 2, 0);

  std::unordered_map<Block, std::uint64_t> last_pos;  // 1-indexed
  last_pos.reserve(trace.length() / 4 + 16);
  for (std::uint64_t t = 1; t <= trace.length(); ++t) {
    Block b = trace.accesses[t - 1];
    auto [it, inserted] = last_pos.try_emplace(b, t);
    if (inserted) {
      ++p.first_count[t];
    } else {
      std::uint64_t rt = t - it->second + 1;  // paper Eq. 4
      ++p.freq[rt];
      it->second = t;
    }
  }
  p.distinct = last_pos.size();
  for (const auto& [block, pos] : last_pos) {
    (void)block;
    ++p.last_count[pos];
  }
  return p;
}

}  // namespace ocps
