#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>

namespace ocps {

namespace {
const char* lookup(const std::string& name) { return std::getenv(name.c_str()); }
}  // namespace

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* v = lookup(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || (end && *end != '\0')) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const std::string& name, double fallback) {
  const char* v = lookup(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || (end && *end != '\0')) return fallback;
  return parsed;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = lookup(name);
  return (v && *v) ? std::string(v) : fallback;
}

bool env_flag(const std::string& name, bool fallback) {
  const char* v = lookup(name);
  if (!v || !*v) return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace ocps
