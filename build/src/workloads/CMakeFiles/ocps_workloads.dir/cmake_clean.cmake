file(REMOVE_RECURSE
  "CMakeFiles/ocps_workloads.dir/spec_like.cpp.o"
  "CMakeFiles/ocps_workloads.dir/spec_like.cpp.o.d"
  "CMakeFiles/ocps_workloads.dir/suite.cpp.o"
  "CMakeFiles/ocps_workloads.dir/suite.cpp.o.d"
  "libocps_workloads.a"
  "libocps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
