file(REMOVE_RECURSE
  "CMakeFiles/test_core_dp.dir/test_core_dp.cpp.o"
  "CMakeFiles/test_core_dp.dir/test_core_dp.cpp.o.d"
  "test_core_dp"
  "test_core_dp.pdb"
  "test_core_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
