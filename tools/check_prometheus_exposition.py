#!/usr/bin/env python3
"""Validate a Prometheus text exposition (format 0.0.4) scrape.

Checks that every line is a comment or a ``name{labels} value`` sample
with a legal metric name and a parseable value (an OpenMetrics-style
exemplar suffix ``# {trace_id="N"} <value>`` is allowed on ``_bucket``
samples and validated when present), that every sample's family has
exactly one preceding ``# TYPE`` line (duplicates are an error: they
break Prometheus ingestion), and that histogram ``_bucket`` series are
cumulative and end with a ``le="+Inf"`` bucket equal to the family's
``_count``. Extra arguments are series names that must appear
(e.g. ``serve_request_latency_bucket``). Exits non-zero on the first
violation, printing the offending line.

Usage:
    tools/check_prometheus_exposition.py metrics.prom [required ...]

Only Python 3 stdlib is used.
"""

import re
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    text = sys.stdin.read() if path == "-" else open(path, encoding="utf-8").read()

    type_re = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                         r"(counter|gauge|histogram|summary|untyped)$")
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)'
        r'(?: # (\{[^}]*\}) (\S+))?$')
    types: dict[str, str] = {}
    seen: dict[str, str] = {}
    buckets: dict[str, list[tuple[str, int]]] = {}

    for ln, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                m = type_re.match(line)
                assert m, f"line {ln}: malformed TYPE line: {line!r}"
                assert m.group(1) not in types, \
                    f"line {ln}: duplicate TYPE line for {m.group(1)}"
                types[m.group(1)] = m.group(2)
            continue
        m = sample_re.match(line)
        assert m, f"line {ln}: malformed sample: {line!r}"
        name, labels, value, ex_labels, ex_value = m.groups()
        if value not in ("NaN", "+Inf", "-Inf"):
            float(value)  # raises SystemExit-worthy ValueError on garbage
        if ex_labels is not None:
            assert name.endswith("_bucket"), \
                f"line {ln}: exemplar on a non-bucket sample: {line!r}"
            assert re.search(r'trace_id="\d+"', ex_labels), \
                f"line {ln}: exemplar without a trace_id label: {line!r}"
            float(ex_value)  # exemplar observed value must parse
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and types.get(stem) == "histogram":
                family = stem
        assert family in types, f"line {ln}: sample {name} has no TYPE line"
        seen[name] = value
        if family != name and name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels or "")
            assert le, f"line {ln}: histogram bucket without le label: {line!r}"
            buckets.setdefault(family, []).append((le.group(1), int(value)))

    for family, series in buckets.items():
        counts = [c for _, c in series]
        assert counts == sorted(counts), f"{family}: buckets not cumulative"
        assert series[-1][0] == "+Inf", f"{family}: missing le=\"+Inf\" bucket"
        total = int(seen.get(family + "_count", -1))
        assert series[-1][1] == total, \
            f"{family}: +Inf bucket {series[-1][1]} != _count {total}"

    for required in sys.argv[2:]:
        assert required in seen or required in types, \
            f"missing required series {required}"

    print(f"OK: {len(seen)} samples, {len(types)} families, "
          f"{len(buckets)} histograms well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
