#include "workloads/suite.hpp"

#include <filesystem>
#include <sstream>

#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/config.hpp"
#include "util/parallel.hpp"

namespace ocps {

SuiteOptions suite_options_from_env() {
  SuiteOptions options;
  options.trace_length = static_cast<std::size_t>(
      env_int("OCPS_TRACE_LENGTH",
              static_cast<std::int64_t>(options.trace_length)));
  options.capacity = static_cast<std::size_t>(
      env_int("OCPS_CAPACITY", static_cast<std::int64_t>(options.capacity)));
  options.cache_dir = env_string("OCPS_SUITE_CACHE", options.cache_dir);
  return options;
}

const ProgramModel& Suite::by_name(const std::string& name) const {
  return models[index_of(name)];
}

std::size_t Suite::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < models.size(); ++i)
    if (models[i].name == name) return i;
  OCPS_CHECK(false, "no model named '" << name << "'");
  return 0;
}

namespace {

std::string cache_path(const SuiteOptions& options, const WorkloadSpec& spec) {
  std::ostringstream os;
  os << options.cache_dir << "/" << spec.name << "_n"
     << options.trace_length << ".fp";
  return os.str();
}

ProgramModel profile_one(const WorkloadSpec& spec,
                         const SuiteOptions& options) {
  // Cached footprint files replay the paper's setup: the optimizer reads
  // per-program footprint files rather than re-tracing.
  if (!options.cache_dir.empty()) {
    std::string path = cache_path(options, spec);
    if (std::filesystem::exists(path)) {
      OCPS_OBS_COUNT("workloads.cache_hits", 1);
      FootprintFile file = load_footprint_file(path);
      return model_from_footprint_file(file, options.capacity);
    }
  }
  obs::ScopedSpan span("workloads.profile_one", "workloads");
  span.set_arg("accesses", options.trace_length);
  OCPS_OBS_COUNT("workloads.traces_generated", 1);
  OCPS_OBS_COUNT("workloads.accesses_generated", options.trace_length);
  Trace trace = spec.generate(options.trace_length);
  FootprintCurve fp = compute_footprint(trace);
  ProgramModel model = make_program_model(spec.name, spec.access_rate, fp,
                                          options.capacity,
                                          options.footprint_knots);
  if (!options.cache_dir.empty()) {
    std::filesystem::create_directories(options.cache_dir);
    FootprintFile file = make_footprint_file(spec.name, spec.access_rate, fp,
                                             options.footprint_knots);
    save_footprint_file(file, cache_path(options, spec),
                        options.footprint_knots);
  }
  return model;
}

}  // namespace

Suite build_suite(const std::vector<WorkloadSpec>& specs,
                  const SuiteOptions& options) {
  OCPS_CHECK(options.trace_length > 0, "trace length must be positive");
  OCPS_CHECK(options.capacity > 0, "capacity must be positive");
  obs::ScopedSpan span("workloads.build_suite", "workloads");
  span.set_arg("programs", specs.size());
  Suite suite;
  suite.options = options;
  suite.specs = specs;
  suite.models.resize(specs.size());
  parallel_for(0, specs.size(), [&](std::size_t i) {
    suite.models[i] = profile_one(specs[i], options);
  });
  return suite;
}

Suite build_spec2006_suite(const SuiteOptions& options) {
  return build_suite(spec2006_suite(), options);
}

Trace suite_trace(const Suite& suite, std::size_t program_index) {
  OCPS_CHECK(program_index < suite.specs.size(),
             "program index out of range");
  return suite.specs[program_index].generate(suite.options.trace_length);
}

}  // namespace ocps
