#include "core/suh.hpp"

#include <queue>

#include "util/check.hpp"

namespace ocps {

namespace {

// Hull vertex indices of a cost curve (monotone chain over (c, cost)).
// Consecutive vertices delimit the convex segments the greedy allocates
// atomically; within a hull segment the true curve lies on or above the
// chord, so taking the whole segment realizes at least the chord's gain
// at its endpoint.
std::vector<std::size_t> hull_vertices(const std::vector<double>& cost) {
  std::vector<std::size_t> hull;
  for (std::size_t c = 0; c < cost.size(); ++c) {
    while (hull.size() >= 2) {
      std::size_t a = hull[hull.size() - 2];
      std::size_t b = hull[hull.size() - 1];
      double lhs = (cost[b] - cost[a]) * static_cast<double>(c - a);
      double rhs = (cost[c] - cost[a]) * static_cast<double>(b - a);
      if (lhs >= rhs) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(c);
  }
  return hull;
}

}  // namespace

SttwResult suh_partition(const std::vector<std::vector<double>>& cost,
                         std::size_t capacity) {
  const std::size_t p = cost.size();
  OCPS_CHECK(p >= 1, "need at least one program");
  for (std::size_t i = 0; i < p; ++i)
    OCPS_CHECK(cost[i].size() >= capacity + 1,
               "cost curve " << i << " shorter than capacity+1");

  // Per-program hull segments.
  std::vector<std::vector<std::size_t>> segments(p);
  std::vector<std::size_t> next_seg(p, 1);  // index of the next vertex
  for (std::size_t i = 0; i < p; ++i) {
    segments[i] = hull_vertices(
        std::vector<double>(cost[i].begin(), cost[i].begin() + capacity + 1));
  }

  struct Entry {
    double utility;      // cost drop per unit over the segment
    std::size_t program;
    std::size_t to;      // segment end (absolute allocation)
    bool operator<(const Entry& other) const {
      return utility < other.utility;
    }
  };
  std::priority_queue<Entry> heap;
  std::vector<std::size_t> alloc(p, 0);

  auto push_next = [&](std::size_t i) {
    std::size_t k = next_seg[i];
    if (k >= segments[i].size()) return;
    std::size_t from = segments[i][k - 1];
    std::size_t to = segments[i][k];
    double drop = cost[i][from] - cost[i][to];
    double units = static_cast<double>(to - from);
    heap.push({drop / units, i, to});
  };
  for (std::size_t i = 0; i < p; ++i) push_next(i);

  std::size_t remaining = capacity;
  while (remaining > 0 && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    std::size_t i = top.program;
    std::size_t need = top.to - alloc[i];
    if (need > remaining) {
      // Segment does not fit: taking part of a segment can end mid-cliff
      // and waste every unit, so skip it entirely and let other programs'
      // smaller segments compete for the remainder — the knapsack-style
      // choice that distinguishes this from the hull greedy.
      continue;
    }
    alloc[i] = top.to;
    remaining -= need;
    ++next_seg[i];
    push_next(i);
  }
  // Leftover units (all segments taken): park on program 0; curves are
  // flat past their last hull vertex.
  alloc[0] += remaining;

  SttwResult result;
  result.alloc = std::move(alloc);
  for (std::size_t i = 0; i < p; ++i) {
    result.objective_value += cost[i][result.alloc[i]];
    result.believed_objective_value += cost[i][result.alloc[i]];
  }
  return result;
}

}  // namespace ocps
