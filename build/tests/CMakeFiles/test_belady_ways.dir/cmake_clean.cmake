file(REMOVE_RECURSE
  "CMakeFiles/test_belady_ways.dir/test_belady_ways.cpp.o"
  "CMakeFiles/test_belady_ways.dir/test_belady_ways.cpp.o.d"
  "test_belady_ways"
  "test_belady_ways.pdb"
  "test_belady_ways[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_belady_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
