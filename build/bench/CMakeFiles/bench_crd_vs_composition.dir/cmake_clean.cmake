file(REMOVE_RECURSE
  "CMakeFiles/bench_crd_vs_composition.dir/bench_crd_vs_composition.cpp.o"
  "CMakeFiles/bench_crd_vs_composition.dir/bench_crd_vs_composition.cpp.o.d"
  "bench_crd_vs_composition"
  "bench_crd_vs_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crd_vs_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
