file(REMOVE_RECURSE
  "CMakeFiles/ocps_comb.dir/counting.cpp.o"
  "CMakeFiles/ocps_comb.dir/counting.cpp.o.d"
  "CMakeFiles/ocps_comb.dir/enumerate.cpp.o"
  "CMakeFiles/ocps_comb.dir/enumerate.cpp.o.d"
  "libocps_comb.a"
  "libocps_comb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_comb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
