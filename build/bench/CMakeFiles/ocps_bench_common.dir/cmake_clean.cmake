file(REMOVE_RECURSE
  "CMakeFiles/ocps_bench_common.dir/common.cpp.o"
  "CMakeFiles/ocps_bench_common.dir/common.cpp.o.d"
  "libocps_bench_common.a"
  "libocps_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
