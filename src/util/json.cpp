#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace ocps::json {

bool Value::as_bool() const {
  OCPS_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::as_number() const {
  OCPS_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  OCPS_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  OCPS_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const Object& Value::as_object() const {
  OCPS_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v && v->is_number()) ? v->number_ : fallback;
}

std::string Value::get_string(std::string_view key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  return (v && v->is_string()) ? v->string_ : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return (v && v->is_bool()) ? v->bool_ : fallback;
}

void Value::set(std::string key, Value v) {
  if (is_null()) type_ = Type::kObject;
  OCPS_CHECK(is_object(), "JSON set() on a non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Integers in the exactly-representable range print without a decimal
  // point (protocol ids and counts stay integral on the wire).
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  // Shortest round-trip representation.
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  OCPS_CHECK(ec == std::errc(), "to_chars failed for double");
  out.append(buf, ptr);
}

}  // namespace

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: dump_number(number_, out); return;
    case Type::kString: out += quote(string_); return;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        array_[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += quote(object_[i].first);
        out.push_back(':');
        object_[i].second.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view. Never throws: every
/// failure is reported through fail() and unwinds via the bool returns.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    Value v;
    if (!parse_value(v, 0)) return Err(ErrorCode::kCorruptData, error_);
    skip_ws();
    if (pos_ != text_.size())
      return Err(ErrorCode::kCorruptData,
                 "trailing characters at offset " + std::to_string(pos_));
    return Ok(std::move(v));
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      return fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out, std::size_t depth) {
    if (depth >= kMaxParseDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!parse_literal("null")) return false;
        out = Value();
        return true;
      case 't':
        if (!parse_literal("true")) return false;
        out = Value(true);
        return true;
      case 'f':
        if (!parse_literal("false")) return false;
        out = Value(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_array(Value& out, std::size_t depth) {
    ++pos_;  // '['
    Array items;
    skip_ws();
    if (eat(']')) {
      out = Value(std::move(items));
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (eat(']')) break;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
    out = Value(std::move(items));
    return true;
  }

  bool parse_object(Value& out, std::size_t depth) {
    ++pos_;  // '{'
    Object members;
    skip_ws();
    if (eat('}')) {
      out = Value(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) break;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
    out = Value(std::move(members));
    return true;
  }

  bool append_utf8(std::uint32_t cp, std::string& out) {
    if (cp <= 0x7F) {
      out.push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail("bad \\u escape");
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a low surrogate continuation.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("lone high surrogate");
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(Value& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      digits = true;
    }
    if (digits && text_[int_start] == '0' && pos_ - int_start > 1) {
      pos_ = start;
      return fail("leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      bool exp_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) {
        pos_ = start;
        return fail("bad exponent");
      }
    }
    if (!digits) {
      pos_ = start;
      return fail("invalid value");
    }
    double d = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("unparsable number");
    }
    out = Value(d);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace ocps::json
