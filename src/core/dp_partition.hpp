// Optimal cache partitioning by dynamic programming (§V-B, Eq. 15-16).
//
// Given per-program cost curves cost_i(c) over integer allocations
// c = 0..C, find the allocation (c_1..c_P) with Σ c_i = C minimizing the
// objective. Unlike STTW, no convexity is assumed: the DP examines the
// entire solution space in O(P·C²) time and O(P·C) space.
//
// Two objectives are built in, both associative-monotone so the same table
// recurrence applies:
//   * kSumCost     — Σ_i cost_i(c_i)      (throughput: total miss count)
//   * kMaxCost     — max_i cost_i(c_i)    (QoS: worst member)
//
// Per-program allocation bounds [min_alloc_i, max_alloc_i] express the
// baseline-fairness constraints of §VI (see baselines.hpp) and any QoS
// floor a caller wants.
#pragma once

#include <cstddef>
#include <vector>

#include "locality/mrc.hpp"
#include "util/result.hpp"

namespace ocps {

/// Objective combined across programs.
enum class DpObjective {
  kSumCost,  ///< minimize Σ cost_i(c_i)
  kMaxCost,  ///< minimize max_i cost_i(c_i)
};

/// Optimizer knobs. Empty bound vectors mean 0 / C for every program.
struct DpOptions {
  DpObjective objective = DpObjective::kSumCost;
  std::vector<std::size_t> min_alloc;  ///< per-program lower bounds
  std::vector<std::size_t> max_alloc;  ///< per-program upper bounds
};

/// Result of an optimization.
struct DpResult {
  bool feasible = false;
  std::vector<std::size_t> alloc;  ///< c_i per program, Σ = capacity
  double objective_value = 0.0;
};

/// Runs the DP. cost[i] must have size >= capacity+1; cost[i][c] is the
/// cost of giving program i exactly c units. Throws CheckError on malformed
/// input; returns feasible == false when the bounds admit no allocation.
DpResult optimize_partition(const std::vector<std::vector<double>>& cost,
                            std::size_t capacity,
                            const DpOptions& options = {});

/// Guarded entry point for the runtime path. Same optimization as
/// optimize_partition, but every failure mode — malformed cost curves
/// (wrong sizes, NaN/inf entries), infeasible bounds, or an unexpected
/// internal CheckError — comes back as an Error value instead of an
/// exception, so an online caller can hold its last-good allocation and
/// keep serving. Offline/batch callers should keep using
/// optimize_partition, where aborting on bad input is the right policy.
Result<DpResult> try_optimize_partition(
    const std::vector<std::vector<double>>& cost, std::size_t capacity,
    const DpOptions& options = {});

/// Exhaustive reference optimizer (enumerates every composition); used as
/// the test oracle for the DP. Exponential — small instances only.
DpResult optimize_partition_exhaustive(
    const std::vector<std::vector<double>>& cost, std::size_t capacity,
    const DpOptions& options = {});

/// Convenience: builds cost curves cost_i(c) = weight_i * mr_i(c) from
/// miss-ratio curves. With weight_i = access-rate share this makes Σ cost
/// the group miss ratio (Eq. 14's f_i weighting).
std::vector<std::vector<double>> weighted_cost_curves(
    const std::vector<const MissRatioCurve*>& mrcs,
    const std::vector<double>& weights, std::size_t capacity);

}  // namespace ocps
