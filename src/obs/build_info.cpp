// Build identity for the ocps_build_info exposition. Compiled in every
// mode — OCPS_OBS_DISABLED removes telemetry, not the binary's identity.
#include <atomic>

#include "obs/obs.hpp"

// The short git sha is baked in at configure time (src/obs/CMakeLists).
#ifndef OCPS_GIT_SHA
#define OCPS_GIT_SHA "unknown"
#endif

namespace ocps::obs {

namespace {

std::atomic<const char* (*)()>& simd_provider() {
  static std::atomic<const char* (*)()> provider{nullptr};
  return provider;
}

const char* compiler_string() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#elif defined(_MSC_VER)
  return "msvc";
#else
  return "unknown";
#endif
}

}  // namespace

void set_simd_kernel_provider(const char* (*provider)()) {
  simd_provider().store(provider, std::memory_order_release);
}

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = OCPS_GIT_SHA;
  info.compiler = compiler_string();
  const char* (*provider)() = simd_provider().load(std::memory_order_acquire);
  const char* kernel = provider ? provider() : nullptr;
  info.simd_kernel = kernel ? kernel : "unknown";
  return info;
}

}  // namespace ocps::obs
