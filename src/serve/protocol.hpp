// Wire protocol of the partition-service daemon (`ocps serve`).
//
// Transport: a Unix domain stream socket carrying line-delimited JSON —
// one request object per line in, one response object per line out,
// answered in completion order (responses echo the request id, so a
// client may pipeline). The full protocol is documented in
// docs/serving.md; this header is the single source of truth for field
// names and status codes, shared by the server, the blocking client, the
// `ocps query` subcommand, and the integration tests.
//
// Requests:
//   {"id":1,"op":"partition","programs":["mcf","lbm"],"capacity":512,
//    "objective":"sum","deadline_ms":50}
//   {"id":2,"op":"sweep","group_size":4,"capacity":512,"deadline_ms":500}
//   {"id":3,"op":"health"}
//   {"id":4,"op":"reload","paths":["profiles/a.fp","profiles/b.fp"]}
//   {"id":5,"op":"metrics"}
//   {"id":6,"op":"slowlog"}
//   {"id":7,"op":"trace","trace_id":42}
//   {"id":8,"op":"slo"}
//   {"id":9,"op":"decisions"}                   (recent + accuracy + drift)
//   {"id":10,"op":"decisions","decision_id":17} (one record + predecessor)
//   {"id":11,"op":"reconcile","decision_id":17,"realized":[0.12,null]}
// Any request may carry a trace context: "trace_id" (a positive integer
// correlating the daemon's spans for that request in the Chrome trace
// export), plus "parent_span" (the forwarding router's span nonce) and
// "hop" (how many routing tiers the request has crossed; a daemon sees
// hop >= 1 iff the request arrived via `ocps router`). The router
// generates a trace_id when the client did not supply one and stamps
// parent_span/hop on the forwarded line, so every request in the fleet
// is traceable end to end.
//
// Responses: {"id":1,"ok":true,...} or
//   {"id":1,"ok":false,"code":429,"error":"queue full"}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/decision_log.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace ocps::serve {

/// Request kinds the daemon answers.
enum class Op {
  kPartition,  ///< DP allocation for one named co-run group
  kSweep,      ///< Table I-style sweep over every k-subset
  kHealth,     ///< daemon liveness + counters (answered inline)
  kReload,     ///< atomic profile-set swap (answered inline)
  kMetrics,    ///< obs registry scrape (answered inline)
  kSlowlog,    ///< top-K slowest requests (answered inline)
  kTrace,      ///< retained spans for one trace_id (answered inline)
  kSlo,        ///< SLO burn rates + alert log (answered inline)
  kDecisions,  ///< decision audit trail + accuracy + drift (inline)
  kReconcile,  ///< attach realized miss ratios to a decision (inline)
};

const char* op_name(Op op);

/// HTTP-flavoured status codes used in error responses.
inline constexpr int kCodeBadRequest = 400;        ///< malformed request
inline constexpr int kCodeNotFound = 404;          ///< unknown program name
inline constexpr int kCodeQueueFull = 429;         ///< admission shed
inline constexpr int kCodeUnprocessable = 422;     ///< rejected reload
inline constexpr int kCodeInternal = 500;          ///< unexpected failure
inline constexpr int kCodeObsDisabled = 501;       ///< obs off / compiled out
inline constexpr int kCodeBadGateway = 502;        ///< router: no backend answered
inline constexpr int kCodeShuttingDown = 503;      ///< drain / overload / no backend up
inline constexpr int kCodeDeadlineExceeded = 504;  ///< deadline passed

/// One decoded request. Fields irrelevant to the op stay defaulted.
struct Request {
  std::int64_t id = 0;  ///< echoed in the response; 0 when absent
  Op op = Op::kHealth;
  std::vector<std::string> programs;  ///< partition: co-run group members
  std::size_t capacity = 0;           ///< 0 = server default
  std::string objective = "sum";      ///< "sum" | "max"
  double deadline_ms = 0.0;           ///< 0 = server default (may be none)
  std::size_t group_size = 0;         ///< sweep: k (0 = min(4, #programs))
  std::vector<std::string> paths;     ///< reload: footprint files
  /// Optional client-supplied correlation id: every span the daemon
  /// records for this request is tagged with it, so the Chrome trace
  /// export shows one connected tree per request across threads. 0 = off.
  /// For `trace` requests this is the id whose spans are being fetched.
  std::uint64_t trace_id = 0;
  /// Trace context stamped by a forwarding router: the nonce of the
  /// router span that forwarded this request (0 = direct client) and the
  /// number of routing tiers crossed so far.
  std::uint64_t parent_span = 0;
  std::size_t hop = 0;
  /// decisions: fetch exactly this record (plus its predecessor for the
  /// allocation diff); 0 = list recent ones. reconcile: the decision the
  /// realized ratios belong to (required, non-zero).
  std::uint64_t decision_id = 0;
  std::size_t limit = 0;  ///< decisions: max recent records (0 = default)
  /// reconcile: realized per-tenant miss ratios in the decision's tenant
  /// order. JSON nulls decode to NaN (tenant made no accesses).
  std::vector<double> realized;
};

/// Decodes one request line. kCorruptData for syntactically bad JSON,
/// kInvalidArgument for a well-formed object with bad fields.
Result<Request> parse_request(const std::string& line);

/// Serializes a request to one JSON line (no trailing newline), emitting
/// only the fields relevant to the op plus trace_id when non-zero. This
/// is the client-side twin of parse_request; `serve::Client` callers and
/// `ocps query` go through it so trace ids propagate uniformly.
std::string encode_request(const Request& req);

/// Response builders; each returns one JSON line WITHOUT the trailing
/// newline (the transport appends it).
std::string error_response(std::int64_t id, int code,
                           const std::string& message);
std::string ok_response(std::int64_t id, json::Value body);

/// Fields of a decoded response, as far as the generic client cares.
struct Response {
  std::int64_t id = 0;
  bool ok = false;
  int code = 0;           ///< set on errors
  std::string error;      ///< set on errors
  json::Value body;       ///< the whole response object
};

/// Decodes one response line.
Result<Response> parse_response(const std::string& line);

/// One process's contribution to a `trace` response: its retained spans
/// for `trace_id` plus the clock anchors a stitcher needs to place them
/// on a shared timeline:
///   {"proc":label,"mono_ns":<obs now>,"wall_ns":<system_clock now>,
///    "spans":[{"name","cat","ts_ns","dur_ns","tid","instant",
///              "arg_name"?,"arg"?},...]}
/// Span timestamps are nanoseconds since the process's private trace
/// epoch; `wall_ns - mono_ns` converts them to (approximate) wall-clock
/// time comparable across processes on one machine. Shared by the server
/// and router `trace` handlers so `ocps trace` stitches one format.
json::Value trace_proc_json(const std::string& proc_label,
                            std::uint64_t trace_id);

/// Wire shape of one decision record, shared by the server's
/// `decisions` handler, the controller's --decisions-out export, and
/// the `ocps decisions` / `ocps why` views:
///   {"decision_id","epoch","trigger","tenants":[...],"alloc":[...],
///    "predicted_mr":[...],"tenant_degraded":[...],"solve_ns",
///    "incremental","note"?,"reconciled","partial"?,
///    "realized_mr":[...]?,"error":[...]?}
/// Non-finite ratios/errors serialize as JSON null.
json::Value decision_json(const obs::DecisionRecord& rec);

/// {"decisions_total","reconciled","error_samples","mean_abs_error",
///  "max_abs_error","bias"} — the lifetime accuracy summary.
json::Value decision_accuracy_json(const obs::DecisionAccuracy& acc);

/// {"configured","alpha","threshold","ewma_abs_error","bias","samples",
///  "breaching","alerts_total","tenants":[...],"alerts":[...]} — drift
/// detector state plus its bounded alert log.
json::Value drift_status_json(const obs::DriftStatus& status,
                              const std::vector<obs::DriftAlert>& alerts);

}  // namespace ocps::serve
