# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_combinatorics[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_locality[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_core_dp[1]_include.cmake")
include("/root/repo/build/tests/test_core_composition[1]_include.cmake")
include("/root/repo/build/tests/test_core_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_core_sharing[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_locality_ext[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim_ext[1]_include.cmake")
include("/root/repo/build/tests/test_core_ext[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_shards[1]_include.cmake")
include("/root/repo/build/tests/test_belady_ways[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_phases[1]_include.cmake")
