// Tests for src/locality: reuse times, footprints (linear formula vs the
// definitional oracle), HOTL conversions, exact stack distances, MRC
// utilities, footprint file IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cachesim/lru.hpp"
#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "locality/hotl.hpp"
#include "locality/mrc.hpp"
#include "locality/reuse_distance.hpp"
#include "locality/reuse_time.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

// The paper's Fig. 3 example trace: a a x b b y a a x b b y.
Trace fig3_trace() { return parse_token_trace("a a x b b y a a x b b y"); }

TEST(ReuseTime, Fig3Histogram) {
  ReuseProfile p = profile_reuse(fig3_trace());
  EXPECT_EQ(p.trace_length, 12u);
  EXPECT_EQ(p.distinct, 4u);
  EXPECT_EQ(p.reuse_pairs(), 8u);
  // Positions (1-indexed): a at 1,2,7,8; x at 3,9; b at 4,5,10,11;
  // y at 6,12. rt = j - i + 1 (Eq. 4):
  //   a: (1,2)->2, (2,7)->6, (7,8)->2 ; b: (4,5)->2, (5,10)->6, (10,11)->2
  //   x: (3,9)->7 ; y: (6,12)->7.
  EXPECT_EQ(p.freq[2], 4u);
  EXPECT_EQ(p.freq[6], 2u);
  EXPECT_EQ(p.freq[7], 2u);
  std::uint64_t total = 0;
  for (auto f : p.freq) total += f;
  EXPECT_EQ(total, 8u);
}

TEST(ReuseTime, FirstAndLastCounts) {
  ReuseProfile p = profile_reuse(fig3_trace());
  // First accesses at positions 1 (a), 3 (x), 4 (b), 6 (y).
  EXPECT_EQ(p.first_count[1], 1u);
  EXPECT_EQ(p.first_count[3], 1u);
  EXPECT_EQ(p.first_count[4], 1u);
  EXPECT_EQ(p.first_count[6], 1u);
  // Last accesses at 8 (a), 9 (x), 11 (b), 12 (y).
  EXPECT_EQ(p.last_count[8], 1u);
  EXPECT_EQ(p.last_count[12], 1u);
}

TEST(ReuseTime, SingleAccessTrace) {
  ReuseProfile p = profile_reuse(Trace{{7}});
  EXPECT_EQ(p.trace_length, 1u);
  EXPECT_EQ(p.distinct, 1u);
  EXPECT_EQ(p.reuse_pairs(), 0u);
}

TEST(Footprint, HandEvaluatedSmallTraces) {
  // "a b": fp(1) = 1, fp(2) = 2.
  FootprintCurve fp = compute_footprint(parse_token_trace("a b"));
  EXPECT_NEAR(fp.fp[1], 1.0, 1e-12);
  EXPECT_NEAR(fp.fp[2], 2.0, 1e-12);
  // "a b a", fp(2) = 2 (both windows have 2 distinct).
  FootprintCurve fp2 = compute_footprint(parse_token_trace("a b a"));
  EXPECT_NEAR(fp2.fp[1], 1.0, 1e-12);
  EXPECT_NEAR(fp2.fp[2], 2.0, 1e-12);
  EXPECT_NEAR(fp2.fp[3], 2.0, 1e-12);
}

TEST(Footprint, EndpointsAlwaysExact) {
  for (auto trace : {make_cyclic(500, 17), make_zipf(500, 40, 1.0, 3),
                     make_sawtooth(500, 23)}) {
    FootprintCurve fp = compute_footprint(trace);
    EXPECT_DOUBLE_EQ(fp.fp[0], 0.0);
    EXPECT_NEAR(fp.fp[1], 1.0, 1e-9);  // one access = one block
    EXPECT_NEAR(fp.fp.back(), static_cast<double>(trace.distinct_blocks()),
                1e-9);
  }
}

// Property: the linear-time formula equals the definitional average for
// every window length, across generator shapes.
class FootprintOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(FootprintOracleProperty, MatchesBruteForce) {
  Trace trace;
  switch (GetParam()) {
    case 0: trace = make_cyclic(400, 13); break;
    case 1: trace = make_sawtooth(400, 19); break;
    case 2: trace = make_zipf(400, 37, 0.8, 5); break;
    case 3: trace = make_uniform(400, 31, 6); break;
    case 4: trace = make_hot_cold(400, 5, 40, 0.7, 7); break;
    case 5: trace = fig3_trace(); break;
    case 6: trace = make_stream(200); break;
    default: FAIL();
  }
  FootprintCurve fast = compute_footprint(trace);
  std::vector<double> slow = footprint_brute_force(trace, trace.length());
  for (std::size_t w = 1; w <= trace.length(); ++w)
    ASSERT_NEAR(fast.fp[w], slow[w], 1e-9) << "w=" << w;
}

INSTANTIATE_TEST_SUITE_P(Shapes, FootprintOracleProperty,
                         ::testing::Range(0, 7));

TEST(Footprint, MonotoneNonDecreasing) {
  FootprintCurve fp = compute_footprint(make_zipf(5000, 200, 1.0, 8));
  for (std::size_t w = 1; w < fp.fp.size(); ++w)
    ASSERT_GE(fp.fp[w] + 1e-12, fp.fp[w - 1]);
}

TEST(Footprint, InterpolationAndInverseAreConsistent) {
  FootprintCurve fp = compute_footprint(make_uniform(3000, 100, 9));
  for (double target : {5.0, 20.0, 60.0, 95.0}) {
    double w = fp.inverse(target);
    EXPECT_NEAR(fp(w), target, 1e-6);
  }
}

TEST(Footprint, CurveExportMatchesDense) {
  FootprintCurve fp = compute_footprint(make_zipf(2000, 80, 1.1, 10));
  PiecewiseLinear curve = fp.to_curve(0);
  for (std::size_t w = 0; w < fp.fp.size(); w += 97)
    EXPECT_NEAR(curve(static_cast<double>(w)), fp.fp[w], 1e-12);
}

TEST(StackDistance, SmallTraceByHand) {
  // Trace a b a b c a: depths — a:inf, b:inf, a:2, b:2, c:inf, a:3.
  Trace t = parse_token_trace("a b a b c a");
  StackDistanceHistogram h = stack_distances(t);
  EXPECT_EQ(h.cold_misses, 3u);
  EXPECT_EQ(h.hist[2], 2u);
  EXPECT_EQ(h.hist[3], 1u);
}

TEST(StackDistance, MissesMatchLruSimulatorEverySize) {
  Trace t = make_zipf(4000, 120, 0.9, 12);
  StackDistanceHistogram h = stack_distances(t);
  for (std::size_t c : {1u, 2u, 5u, 17u, 40u, 80u, 119u, 130u}) {
    LruCache cache(c);
    for (Block b : t.accesses) cache.access(b);
    EXPECT_EQ(h.misses_at(c), cache.misses()) << "c=" << c;
  }
}

TEST(StackDistance, ExactMrcBoundaries) {
  Trace t = make_cyclic(1000, 10);
  MissRatioCurve mrc = exact_lru_mrc(t, 20);
  EXPECT_DOUBLE_EQ(mrc.ratio(0), 1.0);
  // Cyclic under LRU thrashes below the working set...
  EXPECT_DOUBLE_EQ(mrc.ratio(9), 1.0);
  // ...and keeps everything at/above it (only 10 cold misses).
  EXPECT_NEAR(mrc.ratio(10), 10.0 / 1000.0, 1e-12);
  EXPECT_NEAR(mrc.ratio(20), 10.0 / 1000.0, 1e-12);
}

TEST(Hotl, FillTimeInvertsFootprint) {
  FootprintCurve fp = compute_footprint(make_uniform(3000, 100, 13));
  double ft = fill_time(fp, 50.0);
  EXPECT_NEAR(fp(ft), 50.0, 1e-6);
  EXPECT_GT(inter_miss_time(fp, 50.0), 0.0);
}

TEST(Hotl, MrcIsMonotoneAndBounded) {
  FootprintCurve fp = compute_footprint(make_zipf(20000, 300, 0.9, 14));
  MissRatioCurve mrc = hotl_mrc(fp, 400);
  EXPECT_DOUBLE_EQ(mrc.ratio(0), 1.0);
  EXPECT_TRUE(mrc.is_non_increasing(1e-12));
  for (std::size_t c = 0; c <= 400; ++c) {
    ASSERT_GE(mrc.ratio(c), 0.0);
    ASSERT_LE(mrc.ratio(c), 1.0);
  }
  // Past the data size only compulsory misses remain.
  EXPECT_NEAR(mrc.ratio(400), 300.0 / 20000.0, 1e-9);
}

// Property: the HOTL estimate tracks the exact LRU MRC closely on
// random-access workloads (the reuse-window hypothesis holds for them).
class HotlAccuracyProperty : public ::testing::TestWithParam<int> {};

TEST_P(HotlAccuracyProperty, TracksExactLruMrc) {
  Trace trace;
  std::size_t cap = 0;
  switch (GetParam()) {
    case 0: trace = make_zipf(60000, 200, 0.9, 15); cap = 250; break;
    case 1: trace = make_uniform(60000, 150, 16); cap = 200; break;
    case 2: trace = make_hot_cold(60000, 20, 200, 0.8, 17); cap = 250; break;
    default: FAIL();
  }
  MissRatioCurve exact = exact_lru_mrc(trace, cap);
  MissRatioCurve hotl = hotl_mrc(compute_footprint(trace), cap);
  double worst = 0.0;
  for (std::size_t c = 1; c <= cap; ++c)
    worst = std::max(worst, std::abs(exact.ratio(c) - hotl.ratio(c)));
  EXPECT_LT(worst, 0.03) << "max abs error " << worst;
}

INSTANTIATE_TEST_SUITE_P(Shapes, HotlAccuracyProperty,
                         ::testing::Range(0, 3));

TEST(Hotl, CyclicCliffIsCaptured) {
  // The LRU pathology: cyclic(wss) misses everything below wss. HOTL's
  // average-window model smooths the cliff but must still show ~1 far
  // below it and ~cold at/above it.
  Trace t = make_cyclic(50000, 100);
  MissRatioCurve mrc = hotl_mrc(compute_footprint(t), 150);
  EXPECT_GT(mrc.ratio(50), 0.9);
  EXPECT_LT(mrc.ratio(110), 0.05);
}

TEST(Mrc, ConvexityDetection) {
  MissRatioCurve convex({1.0, 0.5, 0.3, 0.2, 0.15, 0.12}, 1000);
  EXPECT_TRUE(convex.is_convex());
  MissRatioCurve cliff({1.0, 1.0, 1.0, 0.1, 0.1, 0.1}, 1000);
  EXPECT_FALSE(cliff.is_convex());
}

TEST(Mrc, ConvexMinorantProperties) {
  MissRatioCurve cliff({1.0, 1.0, 1.0, 0.1, 0.1, 0.05}, 1000);
  MissRatioCurve hull = cliff.convex_minorant();
  EXPECT_TRUE(hull.is_convex(1e-9));
  for (std::size_t c = 0; c <= 5; ++c)
    ASSERT_LE(hull.ratio(c), cliff.ratio(c) + 1e-12) << "c=" << c;
  // Endpoints are preserved.
  EXPECT_DOUBLE_EQ(hull.ratio(0), 1.0);
  EXPECT_DOUBLE_EQ(hull.ratio(5), 0.05);
}

TEST(Mrc, ConvexMinorantOfConvexIsIdentity) {
  MissRatioCurve convex({1.0, 0.5, 0.3, 0.2, 0.15, 0.12}, 1000);
  MissRatioCurve hull = convex.convex_minorant();
  for (std::size_t c = 0; c <= 5; ++c)
    EXPECT_NEAR(hull.ratio(c), convex.ratio(c), 1e-12);
}

TEST(Mrc, MinSizeForRatio) {
  MissRatioCurve mrc({1.0, 0.6, 0.3, 0.3, 0.1}, 100);
  EXPECT_EQ(mrc.min_size_for_ratio(0.65), 1u);
  EXPECT_EQ(mrc.min_size_for_ratio(0.3), 2u);
  EXPECT_EQ(mrc.min_size_for_ratio(0.0), 4u);  // unattainable -> capacity
  EXPECT_EQ(mrc.min_size_for_ratio(1.0), 0u);
}

TEST(Mrc, RatioAtInterpolates) {
  MissRatioCurve mrc({1.0, 0.5, 0.25}, 100);
  EXPECT_DOUBLE_EQ(mrc.ratio_at(0.5), 0.75);
  EXPECT_DOUBLE_EQ(mrc.ratio_at(1.5), 0.375);
  EXPECT_DOUBLE_EQ(mrc.ratio_at(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(mrc.ratio_at(10.0), 0.25);
}

TEST(Mrc, MonotoneRepair) {
  MissRatioCurve bumpy({1.0, 0.4, 0.6, 0.2}, 10);
  MissRatioCurve fixed = bumpy.monotone_repaired();
  EXPECT_TRUE(fixed.is_non_increasing());
  EXPECT_DOUBLE_EQ(fixed.ratio(2), 0.4);
}

TEST(Mrc, MissCountScalesByAccesses) {
  MissRatioCurve mrc({1.0, 0.5}, 2000);
  EXPECT_DOUBLE_EQ(mrc.miss_count(1), 1000.0);
}

TEST(Mrc, RejectsOutOfRangeRatios) {
  EXPECT_THROW(MissRatioCurve({1.5}, 10), CheckError);
  EXPECT_THROW(MissRatioCurve({-0.5}, 10), CheckError);
}

TEST(FootprintIo, RoundTripPreservesModel) {
  FootprintCurve fp = compute_footprint(make_zipf(10000, 150, 1.0, 18));
  FootprintFile file = make_footprint_file("zipfy", 2.5, fp, 512);
  std::string path =
      (std::filesystem::temp_directory_path() / "ocps_fp_test.fp").string();
  save_footprint_file(file, path);
  FootprintFile back = load_footprint_file(path);
  EXPECT_EQ(back.name, "zipfy");
  EXPECT_DOUBLE_EQ(back.access_rate, 2.5);
  EXPECT_EQ(back.trace_length, 10000u);
  EXPECT_EQ(back.distinct, 150u);
  for (double w : {10.0, 100.0, 1000.0, 9000.0})
    EXPECT_NEAR(back.footprint(w), file.footprint(w), 1e-9);
  std::remove(path.c_str());
}

TEST(FootprintIo, LoadRejectsGarbage) {
  std::string path =
      (std::filesystem::temp_directory_path() / "ocps_fp_bad.fp").string();
  {
    std::ofstream os(path);
    os << "nonsense 3\n";
  }
  EXPECT_THROW(load_footprint_file(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ocps
