// Way-partitioned set-associative cache — the Intel CAT deployment model.
//
// Real hardware cannot partition by arbitrary block counts: cache
// allocation technology assigns each core a subset of the *ways* of every
// set. This simulator implements per-program way quotas (each program's
// blocks may occupy at most ways_i lines per set, evicting its own LRU
// line when at quota), which is how the paper's unit-based optimal
// partition would actually be deployed: C units -> way quotas by rounding
// alloc_i / C * total_ways. The CAT bench measures the fidelity loss of
// that coarse, 16-way granularity vs the idealized unit-grain partition.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/interleave.hpp"
#include "trace/trace.hpp"

namespace ocps {

/// Set-associative cache where program p may use at most quota[p] ways in
/// every set (Σ quota <= ways). Per-set LRU within each program's lines.
class WayPartitionedCache {
 public:
  /// num_sets must be a power of two.
  WayPartitionedCache(std::size_t num_sets, std::size_t ways,
                      std::vector<std::size_t> way_quota);

  /// Access by program `who`; returns true on hit.
  bool access(Block b, std::uint32_t who);

  std::size_t num_sets() const { return sets_; }
  std::size_t ways() const { return ways_; }
  const std::vector<std::size_t>& quota() const { return quota_; }

  std::uint64_t hits(std::uint32_t who) const { return hits_[who]; }
  std::uint64_t misses(std::uint32_t who) const { return misses_[who]; }
  double miss_ratio(std::uint32_t who) const;
  double group_miss_ratio() const;

 private:
  struct Line {
    Block block = 0;
    std::uint32_t owner = 0;
    std::uint64_t last_used = 0;
    bool valid = false;
  };

  std::size_t set_index(Block b) const;

  std::size_t sets_;
  std::size_t ways_;
  std::vector<std::size_t> quota_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major per set
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::uint64_t clock_ = 0;
};

/// Rounds a unit-grain allocation (Σ = capacity) to way quotas
/// (Σ <= total_ways, every program with a nonzero allocation gets >= 1
/// way when possible) by largest remainder.
std::vector<std::size_t> ways_from_alloc(const std::vector<std::size_t>& alloc,
                                         std::size_t capacity,
                                         std::size_t total_ways);

/// Runs an interleaved trace through a way-partitioned cache.
struct WayPartitionResult {
  std::vector<double> per_program_mr;
  double group_mr = 0.0;
};
WayPartitionResult simulate_way_partitioned(
    const InterleavedTrace& trace, std::size_t num_sets, std::size_t ways,
    const std::vector<std::size_t>& way_quota, std::size_t warmup = 0);

}  // namespace ocps
