// §V-A / Fig. 4 validation: the Natural Cache Partition. For a set of
// 4-program co-run groups we (a) print the Fig. 4 construction — group
// footprint vs stretched member footprints at the window where the group
// footprint equals the cache size — and (b) compare the predicted
// occupancies against the owner-tagged shared-cache simulator's measured
// mean occupancies, and the predicted natural-partition miss ratios
// against simulated per-program shared miss ratios (the NPA itself).
#include <iostream>

#include "cachesim/corun.hpp"
#include "combinatorics/enumerate.hpp"
#include "common.hpp"
#include "trace/interleave.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;
  const std::size_t sim_len = static_cast<std::size_t>(
      env_int("OCPS_SIM_LENGTH", 800000));

  // Fig. 4 construction for one two-program group.
  {
    const ProgramModel& a = suite.by_name("omnetpp");
    const ProgramModel& b = suite.by_name("mcf");
    CoRunGroup g({&a, &b});
    double w = g.window_for_footprint(static_cast<double>(capacity));
    auto shares = g.rate_shares();
    std::cout << "=== Fig. 4: natural partition construction (omnetpp + "
                 "mcf, C="
              << capacity << ") ===\n";
    std::cout << "window w* with total fp(w*) = C: " << TextTable::num(w, 1)
              << " accesses\n";
    std::cout << "  omnetpp stretched fp(w* * "
              << TextTable::num(shares[0], 3)
              << ") = " << TextTable::num(a.fp(w * shares[0]), 2)
              << " blocks (its occupancy c1)\n";
    std::cout << "  mcf     stretched fp(w* * "
              << TextTable::num(shares[1], 3)
              << ") = " << TextTable::num(b.fp(w * shares[1]), 2)
              << " blocks (its occupancy c2)\n\n";
  }

  // Occupancy + NPA validation on a spread of 4-program groups.
  auto groups = all_subsets(
      static_cast<std::uint32_t>(suite.models.size()), 4);
  std::size_t count = static_cast<std::size_t>(
      env_int("OCPS_NPA_GROUPS", 12));
  std::size_t stride = std::max<std::size_t>(1, groups.size() / count);

  TextTable t({"group", "program", "predicted occ", "simulated occ",
               "predicted mr", "simulated mr"});
  std::vector<double> occ_err, mr_err, pred_all, sim_all;

  for (std::size_t gi = 0; gi < groups.size(); gi += stride) {
    const auto& members = groups[gi];
    std::vector<const ProgramModel*> models;
    std::vector<Trace> traces;
    std::vector<double> rates;
    std::string label;
    for (auto m : members) {
      models.push_back(&suite.models[m]);
      traces.push_back(suite_trace(suite, m));
      rates.push_back(suite.models[m].access_rate);
      if (!label.empty()) label += "+";
      label += suite.models[m].name;
    }
    CoRunGroup group(models);
    auto pred_occ = natural_partition(group, static_cast<double>(capacity));
    auto pred_mr =
        predict_shared_miss_ratios(group, static_cast<double>(capacity));

    InterleavedTrace mix = interleave_proportional(traces, rates, sim_len);
    CoRunOptions opt;
    opt.warmup = sim_len / 4;
    opt.occupancy_period = 64;
    CoRunResult sim = simulate_shared(mix, capacity, opt);

    for (std::size_t k = 0; k < members.size(); ++k) {
      t.add_row({label, suite.models[members[k]].name,
                 TextTable::num(pred_occ[k], 1),
                 TextTable::num(sim.mean_occupancy[k], 1),
                 TextTable::num(pred_mr[k], 4),
                 TextTable::num(sim.miss_ratio(k), 4)});
      occ_err.push_back(std::abs(pred_occ[k] - sim.mean_occupancy[k]) /
                        static_cast<double>(capacity));
      mr_err.push_back(std::abs(pred_mr[k] - sim.miss_ratio(k)));
      pred_all.push_back(pred_mr[k]);
      sim_all.push_back(sim.miss_ratio(k));
      label = "";  // print group label only on its first row
    }
  }
  emit_table(t, "validation_npa");

  Summary occ = summarize(occ_err);
  Summary mr = summarize(mr_err);
  std::cout << "\noccupancy error (fraction of C): mean "
            << TextTable::pct(occ.mean, 2) << ", max "
            << TextTable::pct(occ.max, 2) << "\n";
  std::cout << "miss-ratio abs error: mean " << TextTable::num(mr.mean, 5)
            << ", max " << TextTable::num(mr.max, 5)
            << ", correlation "
            << TextTable::num(pearson(pred_all, sim_all), 4) << "\n";
  std::cout << "\nNPA (§V-A) holds when predicted natural-partition miss "
               "ratios match the shared-cache simulation — which licenses "
               "reducing partition-sharing to partitioning.\n";
  return 0;
}
