// Tests for src/trace: generators, interleaving, IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "locality/reuse_distance.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

TEST(Trace, DistinctBlocks) {
  Trace t{{1, 2, 1, 3, 2}};
  EXPECT_EQ(t.length(), 5u);
  EXPECT_EQ(t.distinct_blocks(), 3u);
}

TEST(Trace, RelabelPreservesStructure) {
  Trace t{{100, 200, 100, 300}};
  Trace r = t.relabeled(50);
  EXPECT_EQ(r.accesses, (std::vector<Block>{50, 51, 50, 52}));
}

TEST(Trace, StatsComputed) {
  Trace t{{5, 9, 5}};
  TraceStats s = compute_stats(t);
  EXPECT_EQ(s.length, 3u);
  EXPECT_EQ(s.distinct, 2u);
  EXPECT_EQ(s.min_block, 5u);
  EXPECT_EQ(s.max_block, 9u);
}

TEST(Generators, CyclicShape) {
  Trace t = make_cyclic(10, 3);
  EXPECT_EQ(t.accesses,
            (std::vector<Block>{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}));
  EXPECT_EQ(t.distinct_blocks(), 3u);
}

TEST(Generators, StreamIsAllDistinct) {
  Trace t = make_stream(100);
  EXPECT_EQ(t.distinct_blocks(), 100u);
}

TEST(Generators, SawtoothBouncesBetweenEnds) {
  Trace t = make_sawtooth(9, 4);
  EXPECT_EQ(t.accesses, (std::vector<Block>{0, 1, 2, 3, 2, 1, 0, 1, 2}));
}

TEST(Generators, SawtoothSingleBlock) {
  Trace t = make_sawtooth(5, 1);
  EXPECT_EQ(t.distinct_blocks(), 1u);
}

TEST(Generators, ZipfIsDeterministicAndSkewed) {
  Trace a = make_zipf(20000, 100, 1.0, 9);
  Trace b = make_zipf(20000, 100, 1.0, 9);
  EXPECT_EQ(a.accesses, b.accesses);
  // Block 0 should be by far the most frequent under alpha=1.
  std::size_t count0 = 0, count50 = 0;
  for (Block x : a.accesses) {
    if (x == 0) ++count0;
    if (x == 50) ++count50;
  }
  EXPECT_GT(count0, 10 * std::max<std::size_t>(count50, 1) / 2);
  EXPECT_GT(count0, 2000u);
}

TEST(Generators, UniformCoversRange) {
  Trace t = make_uniform(20000, 50, 4);
  std::unordered_set<Block> seen(t.accesses.begin(), t.accesses.end());
  EXPECT_EQ(seen.size(), 50u);
  for (Block b : t.accesses) EXPECT_LT(b, 50u);
}

TEST(Generators, HotColdRegionsDisjoint) {
  Trace t = make_hot_cold(30000, 10, 100, 0.9, 7);
  std::size_t hot = 0;
  for (Block b : t.accesses) {
    EXPECT_LT(b, 110u);
    if (b < 10) ++hot;
  }
  double hot_fraction = static_cast<double>(hot) / 30000.0;
  EXPECT_NEAR(hot_fraction, 0.9, 0.02);
}

TEST(Generators, PhasedConcatenatesAndRepeats) {
  std::vector<Phase> phases = {{4, 2, 0, false}, {4, 3, 10, false}};
  Trace t = make_phased(phases, 2);
  EXPECT_EQ(t.length(), 16u);
  // First phase touches {0,1}; second {10,11,12}.
  EXPECT_EQ(t.accesses[0], 0u);
  EXPECT_EQ(t.accesses[4], 10u);
  EXPECT_EQ(t.accesses[8], 0u);  // repeat
}

TEST(Generators, SdDrivenConstantDepthIsCyclic) {
  // Always reusing depth 3 after warm-up cycles three blocks.
  auto sampler = [](Rng&) -> std::size_t { return 3; };
  Trace t = make_sd_driven(1000, sampler, 1);
  EXPECT_EQ(t.distinct_blocks(), 3u);
}

TEST(Generators, SdDrivenSculptsStackDistances) {
  // Sample depth 2 with p=0.7 and depth 5 with p=0.3; the realized stack
  // distance histogram must mirror the mixture.
  Trace t = make_sd_mixture(50000, {2, 5}, {0.7, 0.3}, 11);
  StackDistanceHistogram h = stack_distances(t);
  double n = static_cast<double>(t.length());
  EXPECT_NEAR(static_cast<double>(h.hist[2]) / n, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(h.hist[5]) / n, 0.3, 0.02);
}

TEST(Generators, SdMixtureNewBlockSentinel) {
  Trace t = make_sd_mixture(1000, {SIZE_MAX}, {1.0}, 3);
  EXPECT_EQ(t.distinct_blocks(), 1000u);  // every access is a new block
}

TEST(Interleave, ProportionalSharesMatchRates) {
  Trace a = make_cyclic(100, 5);
  Trace b = make_cyclic(100, 7);
  InterleavedTrace mix = interleave_proportional({a, b}, {3.0, 1.0}, 4000);
  std::size_t count_a = 0;
  for (auto o : mix.owners)
    if (o == 0) ++count_a;
  EXPECT_NEAR(static_cast<double>(count_a) / 4000.0, 0.75, 0.01);
}

TEST(Interleave, BlockSpacesDisjoint) {
  Trace a = make_cyclic(10, 3);
  Trace b = make_cyclic(10, 3);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 40);
  std::unordered_set<Block> of_a, of_b;
  for (std::size_t i = 0; i < mix.length(); ++i)
    (mix.owners[i] == 0 ? of_a : of_b).insert(mix.blocks[i]);
  for (Block x : of_a) EXPECT_EQ(of_b.count(x), 0u);
}

TEST(Interleave, WrapsShortTraces) {
  Trace a = make_cyclic(4, 2);
  InterleavedTrace mix = interleave_proportional({a}, {1.0}, 10);
  EXPECT_EQ(mix.length(), 10u);
}

TEST(Interleave, StochasticSharesMatchRates) {
  Trace a = make_cyclic(100, 5);
  Trace b = make_cyclic(100, 7);
  InterleavedTrace mix =
      interleave_stochastic({a, b}, {1.0, 3.0}, 20000, 123);
  std::size_t count_b = 0;
  for (auto o : mix.owners)
    if (o == 1) ++count_b;
  EXPECT_NEAR(static_cast<double>(count_b) / 20000.0, 0.75, 0.02);
}

TEST(Interleave, PreservesPerProgramOrder) {
  Trace a{{10, 11, 12, 13}};
  Trace b{{20, 21}};
  InterleavedTrace mix = interleave_proportional({a, b}, {2.0, 1.0}, 6);
  std::vector<Block> seen_a;
  for (std::size_t i = 0; i < mix.length(); ++i)
    if (mix.owners[i] == 0) seen_a.push_back(mix.blocks[i]);
  for (std::size_t i = 1; i < seen_a.size(); ++i)
    EXPECT_EQ(seen_a[i], seen_a[i - 1] + 1);
}

TEST(Interleave, RejectsBadInput) {
  Trace a = make_cyclic(10, 2);
  EXPECT_THROW(interleave_proportional({}, {}, 10), CheckError);
  EXPECT_THROW(interleave_proportional({a}, {0.0}, 10), CheckError);
  EXPECT_THROW(interleave_proportional({a}, {1.0, 2.0}, 10), CheckError);
}

TEST(TraceIo, BinaryRoundTrip) {
  Trace t = make_zipf(5000, 64, 0.9, 2);
  std::string path =
      (std::filesystem::temp_directory_path() / "ocps_trace_test.bin")
          .string();
  save_trace_binary(t, path);
  Trace back = load_trace_binary(path);
  EXPECT_EQ(back.accesses, t.accesses);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsGarbage) {
  std::string path =
      (std::filesystem::temp_directory_path() / "ocps_trace_bad.bin")
          .string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a trace";
  }
  EXPECT_THROW(load_trace_binary(path), CheckError);
  std::remove(path.c_str());
}

TEST(TraceIo, TokenTraceParsesFig3Example) {
  // The paper's Fig. 3 trace.
  Trace t = parse_token_trace("a a x b b y a a x b b y");
  EXPECT_EQ(t.length(), 12u);
  EXPECT_EQ(t.distinct_blocks(), 4u);
  EXPECT_EQ(t.accesses[0], t.accesses[1]);
  EXPECT_EQ(t.accesses[0], t.accesses[6]);
}

}  // namespace
}  // namespace ocps
