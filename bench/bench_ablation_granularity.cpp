// Ablation: allocation granularity. The paper partitions in 8KB units
// (C = 1024) rather than 64B blocks to keep the O(P·C²) DP cheap (§VII-A:
// "128² = 16384 times smaller"). This bench sweeps the unit count and
// shows (a) the quadratic DP cost growth and (b) that the achieved group
// miss ratio saturates quickly — justifying the paper's choice.
#include <iostream>

#include "combinatorics/enumerate.hpp"
#include "common.hpp"
#include "core/dp_partition.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  SuiteOptions options = suite_options_from_env();
  // Profile at the finest capacity we sweep so every grain can be derived.
  const std::size_t cap_max = 2048;
  options.capacity = cap_max;
  if (options.cache_dir.empty()) options.cache_dir = "./ocps_cache";
  Suite suite = build_spec2006_suite(options);

  auto groups = all_subsets(
      static_cast<std::uint32_t>(suite.models.size()), 4);
  // A deterministic spread of 16 groups keeps the sweep quick.
  std::vector<std::vector<std::uint32_t>> sample;
  for (std::size_t i = 0; i < groups.size(); i += groups.size() / 16)
    sample.push_back(groups[i]);

  std::cout << "=== Ablation: DP granularity (cost ~ C², quality "
               "saturates) ===\n";
  std::cout << "groups sampled: " << sample.size() << "\n\n";

  TextTable t({"units C", "unit size (8MB cache)", "avg group mr",
               "avg DP time/group", "time vs C=64"});
  double base_time = 0.0;

  for (std::size_t units : {64, 128, 256, 512, 1024, 2048}) {
    // Rebuild cost curves at this grain: cost[i][c] = rate * mr(c * scale)
    // where scale maps coarse units to the profiled fine-grained curve.
    const double scale =
        static_cast<double>(cap_max) / static_cast<double>(units);
    double total_mr = 0.0;
    double total_time = 0.0;
    for (const auto& members : sample) {
      CostMatrix cost(members.size(), units);
      double rate_sum = 0.0;
      for (std::size_t k = 0; k < members.size(); ++k) {
        const ProgramModel& m = suite.models[members[k]];
        rate_sum += m.access_rate;
        double* row = cost.row(k);
        for (std::size_t c = 0; c <= units; ++c)
          row[c] =
              m.access_rate * m.mrc.ratio_at(static_cast<double>(c) * scale);
      }
      PhaseTimer timer("granularity.dp");
      DpResult dp = optimize_partition(cost.view(), units);
      total_time += timer.stop();
      total_mr += dp.objective_value / rate_sum;
    }
    double avg_mr = total_mr / static_cast<double>(sample.size());
    double avg_time = total_time / static_cast<double>(sample.size());
    if (units == 64) base_time = avg_time;
    t.add_row({std::to_string(units),
               std::to_string(8 * 1024 / units) + "KB",
               TextTable::num(avg_mr, 6),
               TextTable::num(avg_time * 1e3, 3) + " ms",
               TextTable::num(avg_time / base_time, 1) + "x"});
  }
  emit_table(t, "ablation_granularity");

  std::cout << "\nExpected: time grows ~4x per doubling of C (O(P·C²)); "
               "the miss ratio improves marginally past ~256 units — the "
               "paper's 1024-unit grain is already conservative.\n";
  return 0;
}
