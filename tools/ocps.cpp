// ocps — command-line front end to the library.
//
// Subcommands (see `ocps help`):
//   profile   trace file -> ASCII footprint file (the paper's per-program
//             profile artifact)
//   mrc       footprint file -> miss-ratio curve (CSV on stdout)
//   predict   footprint files -> co-run prediction: natural partition,
//             per-program + group miss ratios under sharing
//   optimize  footprint files -> partition via the DP, with optional
//             equal/natural baseline fairness constraints and sum/max
//             objectives
//   simulate  address-trace files -> exact shared / equal / optimal
//             partitioned LRU simulation (ground truth for small inputs)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cachesim/corun.hpp"
#include "combinatorics/enumerate.hpp"
#include "runtime/controller.hpp"
#include "runtime/fault_injection.hpp"
#include "core/baselines.hpp"
#include "core/composition.hpp"
#include "core/dp_partition.hpp"
#include "core/group_sweep.hpp"
#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "locality/phases.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "trace/trace_io.hpp"
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace ocps;

namespace {

int usage() {
  std::cout <<
      R"(ocps — optimal cache partition-sharing toolkit

usage: ocps <command> [options]

commands:
  profile <trace>      profile an address trace into a footprint file
      --block-bytes B  cache block size for address -> block mapping (64)
      --binary         input is an ocps binary trace, not text addresses
      --rate R         the program's access rate (1.0)
      --name NAME      program name stored in the file (file stem)
      -o FILE          output footprint file (<trace>.fp)
  mrc <fp-file>        print the miss-ratio curve as CSV
      --capacity C     cache size in blocks (1024)
  predict <fp...>      predict a co-run: natural partition + miss ratios
      --capacity C     shared cache size in blocks (1024)
  optimize <fp...>     compute a partition with the DP
      --capacity C     cache size in blocks (1024)
      --baseline B     none | equal | natural   (none)
      --objective O    sum | max                (sum)
  simulate <trace...>  exact LRU co-run simulation of address traces
      --capacity C     cache size in blocks (1024)
      --block-bytes B  block size (64)
      --warmup N       accesses excluded from stats (len/4)
  sweep <fp...>        evaluate every k-subset co-run with all six methods
      --capacity C     cache size in blocks (1024)
      --group-size K   programs per co-run group (min(4, #files))
      --threads N      sweep threads; 0 = auto from OCPS_THREADS /
                       hardware concurrency (0)
  phases <trace>       detect working-set phases of an address trace
      --block-bytes B  block size (64)
      --binary         input is an ocps binary trace
      --window W       accesses per WSS sample (2000)
      --threshold T    relative WSS change opening a phase (0.30)
  controller <trace...> run the fault-tolerant online repartitioning
                       controller over the interleaved traces
      --capacity C     cache size in blocks (1024)
      --block-bytes B  block size (64)
      --binary         inputs are ocps binary traces
      --epoch N        accesses per repartitioning epoch (50000)
      --sampling-rate R  SHARDS rate per program (0.05)
      --min-units M    per-program QoS floor in blocks (0)
      --max-delta D    hysteresis: max blocks moved per epoch (0 = off)
      --policy P       graceful | restart   (graceful)
      decision quality (the audit trail always runs; see
      docs/observability.md "Decision quality and model drift"):
      --drift-alpha A      EWMA weight of the newest prediction error (0.25)
      --drift-threshold T  |error| EWMA level that logs a model-drift
                           alert; 0 = alerting off (0)
      --decisions-out FILE write the decision audit trail (every decision
                           with predicted vs realized miss ratios,
                           accuracy summary, drift state) as JSON
      fault injection (deterministic; all rates in [0,1], default 0):
      --fault-rate F        set every fault kind to rate F
      --fault-nan F         NaN-lace a sampled MRC
      --fault-spike F       spike a sampled MRC above 1
      --fault-truncate F    truncate a sampled MRC
      --fault-drop F        drop a program's estimate for an epoch
      --fault-dp-fail F     fail the DP for an epoch
      --fault-seed S        injection schedule seed (0xFA117)
      observability (tracing is always recorded by this subcommand):
      --trace-out FILE      write a Chrome trace_event JSON of the run
                            (open in chrome://tracing or Perfetto)
      --metrics-out FILE    write a metrics-registry snapshot as JSON
  serve <fp...>        run the resident partition-service daemon: loads the
                       footprint profiles once, keeps the DP warm, answers
                       line-delimited JSON over a Unix socket (see
                       docs/serving.md); SIGTERM/SIGINT drain gracefully
      --socket PATH    Unix domain socket path (required)
      --listen H:P     also listen on TCP host:port ("127.0.0.1:0" picks an
                       ephemeral port, printed at startup)
      --max-conns N    concurrent connection cap; beyond it connects are
                       refused with 503 (256)
      --io-timeout-ms T  per-connection read/write timeout (5000)
      --capacity C     default / maximum cache size in blocks (1024)
      --max-batch N    max solver requests coalesced per batch (64)
      --linger-ms L    max wait to fill a batch, milliseconds (2)
      --queue-cap N    admission bound; beyond it requests shed 429 (256)
      --threads N      sweep threads; 0 = auto (0)
      --deadline-ms D  default per-request deadline; 0 = none (0)
      --metrics-port P serve Prometheus text on http://127.0.0.1:P/metrics
                       (0 = off)
      --slowlog-cap K  slowest requests kept for the slowlog op (32)
      --window-s N     sliding window for latency percentile gauges (30)
      --slo-p99-ms X   latency SLO: p99 under X ms, evaluated as 5m/1h
                       burn rates on serve.slo.latency.* gauges (0 = off)
      --slo-availability A  availability SLO target in [0,1), e.g. 0.999;
                       serve.slo.availability.* gauges (0 = off)
      --decision-log-cap N  partition-decision audit ring size (128)
      --drift-alpha A      prediction-error EWMA weight (0.25)
      --drift-threshold T  model-drift alert level on the |error| EWMA,
                       fed by `reconcile` requests; 0 = alerting off (0)
      --trace-out FILE   write the Chrome trace_event JSON at drain
      --metrics-out FILE write the metrics snapshot JSON at drain
      network chaos (deterministic; rates in [0,1], default 0; for the
      chaos harness — see docs/fault_tolerance.md):
      --chaos-accept-fail R  drop a freshly accepted connection
      --chaos-reset R        cut a response mid-line, then reset
      --chaos-trickle R      write a response byte-by-byte
      --chaos-stall R        delay a response by --chaos-stall-ms
      --chaos-stall-ms MS    stall duration (40)
      --chaos-seed S         injection schedule seed (0x5EAFA117)
  router               fault-tolerant front tier for a fleet of daemons:
                       speaks the same protocol on its front listeners,
                       places requests on backends by consistent hashing,
                       health-checks them, trips per-backend circuit
                       breakers, and fails over (see docs/serving.md)
      --socket PATH    Unix front listener (this or --listen required)
      --listen H:P     TCP front listener
      --backends A,B   comma-separated backend endpoints, each a socket
                       path or host:port (required)
      --vnodes V       virtual nodes per backend on the hash ring (64)
      --breaker-threshold N  consecutive failures opening a breaker (3)
      --breaker-cooldown-ms C  open -> half-open delay (1000)
      --breaker-probes N     half-open successes to re-close (1)
      --connect-timeout-ms T backend connect timeout (1000)
      --io-timeout-ms T      backend call / front io timeout (5000)
      --health-interval-ms I backend probe interval (500)
      --deadline-ms D  default failover budget per request; 0 = io
                       timeout (0)
      --max-conns N    concurrent front connection cap (256)
      --metrics-port P fleet-wide Prometheus on http://127.0.0.1:P/metrics
                       (0 = off, -1 = ephemeral)
      --slo-p99-ms X / --slo-availability A  fleet SLOs judged on what
                       clients experienced across failovers (same
                       semantics and serve.slo.* gauges as serve)
      --chaos-accept-fail R / --chaos-seed S  front-listener chaos
  query                send one request to a running daemon (or router)
                       and print the JSON response
      --socket PATH    daemon socket path, or any endpoint (required
                       unless --addr)
      --addr H:P       TCP endpoint, alternative to --socket
      --op OP          partition | sweep | health | reload | metrics |
                       slowlog | trace | slo | decisions | reconcile
                       (health)
      --programs A,B   comma-separated program names (partition/sweep)
      --paths a,b      comma-separated footprint files (reload)
      --decision-id N  decisions: fetch one record; reconcile: the
                       decision the realized ratios belong to
      --limit N        decisions: max recent records (0 = server default)
      --realized A,B   reconcile: comma-separated realized miss ratios in
                       the decision's tenant order ("nan" = no accesses)
      --capacity C     cache size in blocks (0 = server default)
      --objective O    sum | max                (sum)
      --group-size K   sweep group size (0 = server default)
      --deadline-ms D  per-request deadline (0 = server default)
      --trace-id N     correlation id tagging the daemon's spans for this
                       request in the Chrome trace export (0 = none)
      --timeout-ms T   client-side wait for the response (30000)
      --retries N      attempts for idempotent ops on transport errors /
                       429 / 503 / 504; --deadline-ms is the retry
                       budget; reload is never retried (3)
      --retry-base-ms B  backoff before the first retry (10)
      --retry-max-ms M   backoff growth cap (500)
      --retry-seed S     jitter schedule seed (0xB0FF)
  trace <id>           stitch one request's distributed trace: queries a
                       router (which fans out to its backends) or a single
                       daemon for the spans retained under that trace id
                       and prints a cross-process waterfall aligned on
                       wall-clock (see docs/observability.md)
      --socket PATH    endpoint socket path (this or --addr required)
      --addr H:P       TCP endpoint
      --out FILE       also write the stitched Chrome trace_event JSON
      --timeout-ms T   client-side wait for each response (30000)
  slo                  one-shot SLO view of a daemon or router: targets,
                       5m/1h burn rates, breach state, and the bounded
                       breach-alert log
      --socket PATH    endpoint socket path (this or --addr required)
      --addr H:P       TCP endpoint
      --timeout-ms T   client-side wait (30000)
  decisions            one-shot view of an endpoint's partition-decision
                       audit trail: recent decisions, predicted-vs-
                       realized accuracy, model-drift state and alerts
                       (a router answers per backend)
      --socket PATH    endpoint socket path (this or --addr required)
      --addr H:P       TCP endpoint
      --limit N        max recent decisions to fetch (0 = server default)
      --timeout-ms T   client-side wait (30000)
  why <decision-id>    explain one partition decision: trigger and note,
                       allocation diff against the previous decision, and
                       per-tenant predicted vs realized miss ratios with
                       the prediction errors that drove any fallback
      --socket PATH    endpoint socket path (this or --addr required)
      --addr H:P       TCP endpoint
      --timeout-ms T   client-side wait (30000)
  top                  live terminal dashboard of a running daemon:
                       throughput, queue depth, shed/504 rates, batch
                       size, latency percentiles, per-stage p99s, build
                       info, and model-drift state, refreshed in place
      --socket PATH    daemon socket path (required)
      --interval-ms I  refresh interval (1000)
      --iterations N   frames to render before exiting; 0 = until ^C (0)
      --no-ansi        append frames instead of redrawing in place
      --timeout-ms T   per-poll client timeout (5000)
  stats [trace...]     run the controller with full observability and
                       print the metrics registry (DP solve latency,
                       simulator counters, controller health). With no
                       traces a synthetic 4-program mix is used.
      --capacity C     cache size in blocks (1024)
      --block-bytes B  block size (64)
      --binary         inputs are ocps binary traces
      --epoch N        accesses per repartitioning epoch (20000)
      --length N       accesses per synthetic program (100000)
      --trace-out FILE   write the Chrome trace_event JSON too
      --metrics-out FILE write the JSON snapshot too
      --socket PATH    read live metrics from a running daemon instead
                       (prints its Prometheus exposition; no local run)
      --timeout-ms T   client-side wait when --socket is used (30000)
  help                 this message
)";
  return 2;
}

/// Writes the trace / metrics artifacts requested via --trace-out and
/// --metrics-out. Shared by `controller` and `stats`.
void write_obs_outputs(const ArgParser& args) {
  std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) {
    std::ofstream os(trace_out, std::ios::trunc);
    OCPS_CHECK(os.good(), "cannot open " << trace_out << " for writing");
    obs::write_chrome_trace(os);
    OCPS_CHECK(os.good(), "write failed for " << trace_out);
    std::cout << "wrote Chrome trace (" << obs::trace_events().size()
              << " events) to " << trace_out << "\n";
  }
  std::string metrics_out = args.get_string("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out, std::ios::trunc);
    OCPS_CHECK(os.good(), "cannot open " << metrics_out << " for writing");
    obs::write_metrics_json(os);
    OCPS_CHECK(os.good(), "write failed for " << metrics_out);
    std::cout << "wrote metrics snapshot to " << metrics_out << "\n";
  }
}

std::string stem_of(const std::string& path) {
  auto slash = path.find_last_of('/');
  std::string base =
      (slash == std::string::npos) ? path : path.substr(slash + 1);
  auto dot = base.find_last_of('.');
  return (dot == std::string::npos) ? base : base.substr(0, dot);
}

int cmd_profile(const ArgParser& args) {
  OCPS_CHECK(args.positionals().size() == 2, "profile needs one trace file");
  const std::string& path = args.positionals()[1];
  std::uint64_t block_bytes =
      static_cast<std::uint64_t>(args.get_int("block-bytes", 64));
  Trace trace = args.has("binary")
                    ? load_trace_binary(path)
                    : load_address_trace(path, block_bytes);
  OCPS_CHECK(!trace.empty(), "trace is empty: " << path);
  FootprintCurve fp = compute_footprint(trace);
  FootprintFile file = make_footprint_file(
      args.get_string("name", stem_of(path)), args.get_double("rate", 1.0),
      fp);
  std::string out = args.get_string("o", path + ".fp");
  save_footprint_file(file, out);
  std::cout << "profiled " << trace.length() << " accesses, "
            << fp.distinct << " distinct blocks -> " << out << "\n";
  return 0;
}

int cmd_mrc(const ArgParser& args) {
  OCPS_CHECK(args.positionals().size() == 2, "mrc needs one footprint file");
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  ProgramModel model = model_from_footprint_file(
      load_footprint_file(args.positionals()[1]), capacity);
  std::cout << "cache_blocks,miss_ratio\n";
  for (std::size_t c = 0; c <= capacity; ++c)
    std::cout << c << ',' << model.mrc.ratio(c) << '\n';
  return 0;
}

std::vector<ProgramModel> load_models(const ArgParser& args,
                                      std::size_t capacity) {
  std::vector<ProgramModel> models;
  for (std::size_t i = 1; i < args.positionals().size(); ++i)
    models.push_back(model_from_footprint_file(
        load_footprint_file(args.positionals()[i]), capacity));
  OCPS_CHECK(!models.empty(), "need at least one footprint file");
  return models;
}

int cmd_predict(const ArgParser& args) {
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  auto models = load_models(args, capacity);
  std::vector<const ProgramModel*> ptrs;
  for (const auto& m : models) ptrs.push_back(&m);
  CoRunGroup group(ptrs);
  auto occupancy = natural_partition(group, static_cast<double>(capacity));
  auto mrs = predict_shared_miss_ratios(group, static_cast<double>(capacity));
  TextTable t({"program", "rate", "natural occupancy", "shared miss ratio",
               "solo miss ratio @C"});
  for (std::size_t i = 0; i < models.size(); ++i)
    t.add_row({models[i].name, TextTable::num(models[i].access_rate, 2),
               TextTable::num(occupancy[i], 1), TextTable::num(mrs[i], 5),
               TextTable::num(models[i].mrc.ratio(capacity), 5)});
  t.print(std::cout);
  std::cout << "group miss ratio under sharing: "
            << TextTable::num(group_miss_ratio(group, mrs), 5) << "\n";
  return 0;
}

int cmd_optimize(const ArgParser& args) {
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  auto models = load_models(args, capacity);
  std::vector<const ProgramModel*> ptrs;
  std::vector<const MissRatioCurve*> curves;
  std::vector<double> weights;
  for (const auto& m : models) {
    ptrs.push_back(&m);
    curves.push_back(&m.mrc);
    weights.push_back(m.access_rate);
  }
  CoRunGroup group(ptrs);
  CostMatrix cost = weighted_cost_matrix(curves, weights, capacity);

  std::string baseline = args.get_string("baseline", "none");
  std::string objective = args.get_string("objective", "sum");
  DpResult result;
  if (baseline == "equal") {
    result = optimize_equal_baseline(group, cost.view(), capacity);
  } else if (baseline == "natural") {
    result = optimize_natural_baseline(group, cost.view(), capacity);
  } else {
    OCPS_CHECK(baseline == "none", "unknown baseline '" << baseline << "'");
    DpOptions options;
    if (objective == "max") {
      options.objective = DpObjective::kMaxCost;
    } else {
      OCPS_CHECK(objective == "sum",
                 "unknown objective '" << objective << "'");
    }
    result = optimize_partition(cost.view(), capacity, options);
  }
  OCPS_CHECK(result.feasible, "optimization infeasible");

  double rate_sum = 0.0;
  for (double w : weights) rate_sum += w;
  TextTable t({"program", "blocks", "miss ratio"});
  double group_mr = 0.0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    double mr = models[i].mrc.ratio(result.alloc[i]);
    group_mr += weights[i] / rate_sum * mr;
    t.add_row({models[i].name, std::to_string(result.alloc[i]),
               TextTable::num(mr, 5)});
  }
  t.print(std::cout);
  std::cout << "group miss ratio: " << TextTable::num(group_mr, 5)
            << "  (baseline=" << baseline << ", objective=" << objective
            << ")\n";
  return 0;
}

int cmd_simulate(const ArgParser& args) {
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  std::uint64_t block_bytes =
      static_cast<std::uint64_t>(args.get_int("block-bytes", 64));
  std::vector<Trace> traces;
  std::vector<double> rates;
  std::vector<std::string> names;
  for (std::size_t i = 1; i < args.positionals().size(); ++i) {
    traces.push_back(
        load_address_trace(args.positionals()[i], block_bytes));
    rates.push_back(1.0);
    names.push_back(stem_of(args.positionals()[i]));
  }
  OCPS_CHECK(!traces.empty(), "need at least one trace file");
  std::size_t total = 0;
  for (const auto& t : traces) total += t.length();
  InterleavedTrace mix = interleave_proportional(traces, rates, total);
  CoRunOptions opt;
  opt.warmup = static_cast<std::size_t>(
      args.get_int("warmup", static_cast<std::int64_t>(total / 4)));

  CoRunResult shared = simulate_shared(mix, capacity, opt);
  CoRunResult equal = simulate_partitioned(
      mix, equal_partition(traces.size(), capacity), opt);
  TextTable t({"program", "shared mr", "equal-partition mr"});
  for (std::size_t i = 0; i < traces.size(); ++i)
    t.add_row({names[i], TextTable::num(shared.miss_ratio(i), 5),
               TextTable::num(equal.miss_ratio(i), 5)});
  t.print(std::cout);
  std::cout << "group: shared "
            << TextTable::num(shared.group_miss_ratio(), 5) << ", equal "
            << TextTable::num(equal.group_miss_ratio(), 5) << "\n";
  return 0;
}

int cmd_sweep(const ArgParser& args) {
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  auto models = load_models(args, capacity);
  std::size_t k = static_cast<std::size_t>(args.get_int(
      "group-size",
      static_cast<std::int64_t>(std::min<std::size_t>(4, models.size()))));
  OCPS_CHECK(k >= 1 && k <= models.size(),
             "group size must be in [1, #programs]");

  auto groups = all_subsets(static_cast<std::uint32_t>(models.size()),
                            static_cast<std::uint32_t>(k));
  SweepOptions options;
  options.capacity = capacity;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  auto sweep = sweep_groups(models, groups, options);

  std::cout << "evaluated " << sweep.size() << " co-run groups of " << k
            << " programs at C=" << capacity << "\n\n";
  TextTable t({"Improvement of Optimal over", "Max", "Avg", "Median",
               ">=10%", ">=20%"});
  for (Method m : {Method::kEqual, Method::kEqualBaseline, Method::kNatural,
                   Method::kNaturalBaseline, Method::kSttw}) {
    ImprovementStats s = improvement_over(sweep, m);
    t.add_row({method_name(m), TextTable::pct(s.max, 2),
               TextTable::pct(s.avg, 2), TextTable::pct(s.median, 2),
               TextTable::pct(s.frac_ge_10, 2),
               TextTable::pct(s.frac_ge_20, 2)});
  }
  t.print(std::cout);

  // Per-group detail for small runs.
  if (sweep.size() <= 20) {
    std::cout << "\n";
    TextTable d({"group", "Equal", "Natural", "Optimal", "STTW"});
    for (const auto& g : sweep) {
      std::string label;
      for (auto m : g.members) {
        if (!label.empty()) label += "+";
        label += models[m].name;
      }
      d.add_row({label, TextTable::num(g.of(Method::kEqual).group_mr, 5),
                 TextTable::num(g.of(Method::kNatural).group_mr, 5),
                 TextTable::num(g.of(Method::kOptimal).group_mr, 5),
                 TextTable::num(g.of(Method::kSttw).group_mr, 5)});
    }
    d.print(std::cout);
  }
  return 0;
}

int cmd_phases(const ArgParser& args) {
  OCPS_CHECK(args.positionals().size() == 2, "phases needs one trace file");
  const std::string& path = args.positionals()[1];
  std::uint64_t block_bytes =
      static_cast<std::uint64_t>(args.get_int("block-bytes", 64));
  Trace trace = args.has("binary")
                    ? load_trace_binary(path)
                    : load_address_trace(path, block_bytes);
  PhaseDetectorConfig config;
  config.window = static_cast<std::size_t>(args.get_int("window", 2000));
  config.threshold = args.get_double("threshold", 0.30);
  auto phases = detect_phases(trace, config);

  std::cout << trace.length() << " accesses, " << phases.size()
            << " phase(s) detected (window " << config.window
            << ", threshold " << config.threshold << "):\n";
  TextTable t({"phase", "begin", "end", "accesses", "mean windowed WSS"});
  for (std::size_t i = 0; i < phases.size(); ++i)
    t.add_row({std::to_string(i), std::to_string(phases[i].begin),
               std::to_string(phases[i].end),
               std::to_string(phases[i].end - phases[i].begin),
               TextTable::num(phases[i].mean_wss, 1)});
  t.print(std::cout);
  std::cout << "Use the boundaries with phase-aware repartitioning "
               "(core/phase_aware) or pick the epoch count they imply.\n";
  return 0;
}

int cmd_controller(const ArgParser& args) {
  // The CLI always records: the controller's health counters are read
  // back from the metrics registry below, and --trace-out / --metrics-out
  // export whatever the run produced.
  obs::set_enabled(true);
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  std::uint64_t block_bytes =
      static_cast<std::uint64_t>(args.get_int("block-bytes", 64));
  std::vector<Trace> traces;
  std::vector<double> rates;
  std::vector<std::string> names;
  for (std::size_t i = 1; i < args.positionals().size(); ++i) {
    const std::string& path = args.positionals()[i];
    traces.push_back(args.has("binary")
                         ? load_trace_binary(path)
                         : load_address_trace(path, block_bytes));
    rates.push_back(1.0);
    names.push_back(stem_of(path));
  }
  OCPS_CHECK(!traces.empty(), "need at least one trace file");
  std::size_t total = 0;
  for (const auto& t : traces) total += t.length();
  InterleavedTrace mix = interleave_proportional(traces, rates, total);

  ControllerConfig config;
  config.capacity = capacity;
  config.epoch_length =
      static_cast<std::size_t>(args.get_int("epoch", 50000));
  config.sampling_rate = args.get_double("sampling-rate", 0.05);
  config.min_units =
      static_cast<std::size_t>(args.get_int("min-units", 0));
  config.max_delta_units =
      static_cast<std::size_t>(args.get_int("max-delta", 0));
  std::string policy = args.get_string("policy", "graceful");
  if (policy == "restart") {
    config.fault_policy = FaultPolicy::kRestartOnError;
  } else {
    OCPS_CHECK(policy == "graceful", "unknown policy '" << policy << "'");
  }
  config.drift_alpha = args.get_double("drift-alpha", 0.25);
  config.drift_threshold = args.get_double("drift-threshold", 0.0);

  double all = args.get_double("fault-rate", 0.0);
  FaultInjectionConfig faults;
  faults.nan_rate = args.get_double("fault-nan", all);
  faults.spike_rate = args.get_double("fault-spike", all);
  faults.truncate_rate = args.get_double("fault-truncate", all);
  faults.drop_rate = args.get_double("fault-drop", all);
  faults.dp_fail_rate = args.get_double("fault-dp-fail", all);
  faults.seed = static_cast<std::uint64_t>(
      args.get_int("fault-seed", 0xFA117));
  FaultInjector injector(faults);

  ControllerResult r = run_online_controller(mix, traces.size(), config,
                                             injector.hooks());

  TextTable t({"program", "final blocks", "miss ratio"});
  const auto& final_alloc = r.alloc_history.back();
  for (std::size_t i = 0; i < traces.size(); ++i)
    t.add_row({names[i], std::to_string(final_alloc[i]),
               TextTable::num(r.sim.miss_ratio(i), 5)});
  t.print(std::cout);
  std::cout << "group miss ratio: "
            << TextTable::num(r.sim.group_miss_ratio(), 5) << "\n\n";

  // Health comes from the metrics registry — the controller feeds the
  // same counters that back `ocps stats` and the bench snapshots.
  obs::write_metrics_text(std::cout, "controller.");
  std::cout << "profiling cost: " << TextTable::pct(r.sampled_fraction, 1)
            << "\n";

  // Decision-quality summary: how well the predicted miss ratios held up
  // against what the simulated cache then actually did.
  obs::DecisionAccuracy acc = r.decisions->accuracy();
  std::cout << "decisions: " << acc.decisions_total << " logged, "
            << acc.reconciled_total << " reconciled, mean |error| "
            << TextTable::num(acc.mean_abs_error, 5) << ", max "
            << TextTable::num(acc.max_abs_error, 5) << ", bias "
            << TextTable::num(acc.mean_signed_error, 5) << "\n";
  std::cout << "drift: EWMA |error| " << TextTable::num(r.drift.ewma_abs, 5)
            << ", bias " << TextTable::num(r.drift.bias, 5) << " over "
            << r.drift.samples << " samples";
  if (r.drift.configured)
    std::cout << " (threshold " << TextTable::num(r.drift.threshold, 5)
              << (r.drift.breaching ? ", BREACHING" : "") << ")";
  else
    std::cout << " (alerting off; set --drift-threshold)";
  std::cout << "\n";
  for (const obs::DriftAlert& a : r.drift_alerts)
    std::cout << "  drift alert #" << a.seq << " at decision " << a.decision_id
              << ": EWMA |error| " << TextTable::num(a.ewma_abs, 5) << " > "
              << TextTable::num(a.threshold, 5) << ", worst tenant "
              << a.tenant << "\n";

  std::string decisions_out = args.get_string("decisions-out", "");
  if (!decisions_out.empty()) {
    std::ofstream os(decisions_out, std::ios::trunc);
    OCPS_CHECK(os.good(),
               "cannot open " << decisions_out << " for writing");
    json::Value doc;
    json::Array rows;
    std::vector<obs::DecisionRecord> all =
        r.decisions->recent(r.decisions->capacity());
    for (auto it = all.rbegin(); it != all.rend(); ++it)  // oldest first
      rows.push_back(serve::decision_json(*it));
    doc.set("decisions", json::Value(std::move(rows)));
    doc.set("accuracy", serve::decision_accuracy_json(acc));
    doc.set("drift", serve::drift_status_json(r.drift, r.drift_alerts));
    os << doc.dump() << "\n";
    std::cout << "decision audit trail written to " << decisions_out << "\n";
  }
  if (injector.injected_total() > 0)
    std::cout << "injected faults: " << injector.injected_total() << " ("
              << injector.injected_nan() << " nan, "
              << injector.injected_spikes() << " spike, "
              << injector.injected_truncations() << " truncate, "
              << injector.injected_drops() << " drop, "
              << injector.injected_dp_failures() << " dp-fail)\n";
  write_obs_outputs(args);
  return 0;
}

// `ocps stats --socket PATH`: scrape a *running* daemon over its socket
// (the `metrics` op) and print the Prometheus exposition it returns,
// instead of running a local controller.
int cmd_stats_socket(const ArgParser& args, const std::string& socket) {
  Result<serve::Client> client = serve::Client::connect(socket);
  if (!client.ok()) {
    std::cerr << "error: " << client.error().to_string() << "\n";
    return 1;
  }
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kMetrics;
  Result<serve::Response> resp = client.value().call(
      serve::encode_request(req),
      std::chrono::milliseconds(args.get_int("timeout-ms", 30000)));
  if (!resp.ok()) {
    std::cerr << "error: " << resp.error().to_string() << "\n";
    return 1;
  }
  if (!resp.value().ok) {
    std::cerr << "error: daemon replied " << resp.value().code << ": "
              << resp.value().error << "\n";
    return 1;
  }
  std::cout << resp.value().body.get_string("prometheus", "");
  return 0;
}

int cmd_stats(const ArgParser& args) {
  std::string socket = args.get_string("socket", "");
  if (!socket.empty()) return cmd_stats_socket(args, socket);
  obs::set_enabled(true);
  std::size_t capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  std::uint64_t block_bytes =
      static_cast<std::uint64_t>(args.get_int("block-bytes", 64));

  std::vector<Trace> traces;
  if (args.positionals().size() > 1) {
    for (std::size_t i = 1; i < args.positionals().size(); ++i) {
      const std::string& path = args.positionals()[i];
      traces.push_back(args.has("binary")
                           ? load_trace_binary(path)
                           : load_address_trace(path, block_bytes));
    }
  } else {
    // Synthetic 4-program mix exercising the cliff / smooth / convex /
    // two-regime MRC shapes, so every stage of the pipeline lights up.
    std::size_t n = static_cast<std::size_t>(args.get_int("length", 100000));
    traces.push_back(make_cyclic(n, capacity / 2));
    traces.push_back(make_sawtooth(n, capacity));
    traces.push_back(make_zipf(n, capacity * 4, 0.8, 42));
    traces.push_back(make_hot_cold(n, capacity / 8, capacity * 4, 0.9, 7));
  }

  std::size_t total = 0;
  for (const auto& t : traces) total += t.length();
  InterleavedTrace mix = interleave_proportional(
      traces, std::vector<double>(traces.size(), 1.0), total);

  ControllerConfig config;
  config.capacity = capacity;
  config.epoch_length =
      static_cast<std::size_t>(args.get_int("epoch", 20000));
  ControllerResult r =
      run_online_controller(mix, traces.size(), config, ControllerHooks{});
  (void)r;

  obs::BuildInfo bi = obs::build_info();
  std::cout << "build " << bi.git_sha << " — " << bi.compiler << " — simd "
            << bi.simd_kernel << "\n";
  std::cout << "metrics registry after a " << total << "-access, "
            << traces.size() << "-program controller run:\n\n";
  obs::write_metrics_text(std::cout);
  write_obs_outputs(args);
  return 0;
}

// The SIGTERM/SIGINT handler may only do async-signal-safe work;
// Server::request_stop is a single atomic store, which qualifies.
std::atomic<serve::Server*> g_server{nullptr};

extern "C" void ocps_serve_signal_handler(int) {
  if (serve::Server* s = g_server.load()) s->request_stop();
}

// Builds the socket-layer fault injector from the --chaos-* flags.
// Returns nullptr (and leaves `storage` empty) when every rate is zero,
// so production runs skip the injection branches entirely.
const NetFaultInjector* make_chaos_injector(
    const ArgParser& args, std::optional<NetFaultInjector>& storage) {
  NetFaultConfig cfg;
  cfg.accept_fail_rate = args.get_double("chaos-accept-fail", 0.0);
  cfg.reset_rate = args.get_double("chaos-reset", 0.0);
  cfg.trickle_rate = args.get_double("chaos-trickle", 0.0);
  cfg.stall_rate = args.get_double("chaos-stall", 0.0);
  cfg.stall = std::chrono::milliseconds(args.get_int("chaos-stall-ms", 40));
  cfg.seed = static_cast<std::uint64_t>(
      args.get_int("chaos-seed", 0x5EAFA117));
  if (cfg.accept_fail_rate <= 0.0 && cfg.reset_rate <= 0.0 &&
      cfg.trickle_rate <= 0.0 && cfg.stall_rate <= 0.0)
    return nullptr;
  storage.emplace(cfg);
  return &*storage;
}

int cmd_serve(const ArgParser& args) {
  obs::set_enabled(true);
  serve::ServeConfig config;
  config.socket_path = args.get_string("socket", "");
  config.listen_address = args.get_string("listen", "");
  OCPS_CHECK(!config.socket_path.empty() || !config.listen_address.empty(),
             "serve needs --socket PATH and/or --listen HOST:PORT");
  config.max_connections =
      static_cast<std::size_t>(args.get_int("max-conns", 256));
  config.io_timeout =
      std::chrono::milliseconds(args.get_int("io-timeout-ms", 5000));
  config.capacity = static_cast<std::size_t>(args.get_int("capacity", 1024));
  config.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 64));
  config.linger = std::chrono::milliseconds(args.get_int("linger-ms", 2));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 256));
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  config.metrics_port = static_cast<int>(args.get_int("metrics-port", 0));
  config.slowlog_capacity =
      static_cast<std::size_t>(args.get_int("slowlog-cap", 32));
  config.latency_window_s =
      static_cast<unsigned>(args.get_int("window-s", 30));
  config.slo_p99_ms = args.get_double("slo-p99-ms", 0.0);
  config.slo_availability = args.get_double("slo-availability", 0.0);
  config.decision_log_capacity =
      static_cast<std::size_t>(args.get_int("decision-log-cap", 128));
  config.drift_alpha = args.get_double("drift-alpha", 0.25);
  config.drift_threshold = args.get_double("drift-threshold", 0.0);

  // Declared before the server so it outlives every server thread.
  std::optional<NetFaultInjector> chaos;
  config.net_faults = make_chaos_injector(args, chaos);

  auto models = load_models(args, config.capacity);
  serve::Server server(config, std::move(models));
  g_server.store(&server);
  std::signal(SIGTERM, ocps_serve_signal_handler);
  std::signal(SIGINT, ocps_serve_signal_handler);

  Result<bool> started = server.start();
  if (!started.ok()) {
    g_server.store(nullptr);
    std::cerr << "error: " << started.error().to_string() << "\n";
    return 1;
  }
  std::cout << "serving " << args.positionals().size() - 1
            << " program profiles on "
            << (config.socket_path.empty() ? std::string("tcp only")
                                           : config.socket_path)
            << " (capacity " << config.capacity << ", max batch "
            << config.max_batch << ", queue " << config.queue_capacity
            << "); SIGTERM drains" << std::endl;
  if (server.bound_listen_port() > 0)
    std::cout << "tcp listener on " << config.listen_address << " (port "
              << server.bound_listen_port() << ")" << std::endl;
  if (config.net_faults)
    std::cout << "CHAOS: network fault injection is armed" << std::endl;
  if (server.bound_metrics_port() > 0)
    std::cout << "metrics on http://127.0.0.1:" << server.bound_metrics_port()
              << "/metrics" << std::endl;

  server.wait_until_stop_requested();
  std::cout << "draining..." << std::endl;
  server.stop();
  g_server.store(nullptr);

  serve::Server::Counters c = server.counters();
  std::cout << "drained: " << c.requests << " requests, " << c.answered
            << " answered, " << c.shed << " shed, " << c.deadline_exceeded
            << " past deadline, " << c.malformed << " malformed, "
            << c.batches << " batches, " << c.reloads << " reloads\n";
  if (chaos)
    std::cout << "chaos injected: " << chaos->injected_accept_failures()
              << " accept failures, " << chaos->injected_resets()
              << " resets, " << chaos->injected_trickles() << " trickles, "
              << chaos->injected_stalls() << " stalls\n";
  // The daemon's own spans (admission / solve / sweep, tagged with client
  // trace ids) and metrics are exportable at drain, same as `controller`.
  write_obs_outputs(args);
  return 0;
}

int cmd_query(const ArgParser& args) {
  std::string endpoint = args.get_string("addr", "");
  if (endpoint.empty()) endpoint = args.get_string("socket", "");
  OCPS_CHECK(!endpoint.empty(),
             "query needs --socket PATH or --addr HOST:PORT");

  json::Value req;
  req.set("id", json::Value(1.0));
  req.set("op", json::Value(args.get_string("op", "health")));
  auto comma_list = [](const std::string& csv) {
    json::Array out;
    std::size_t start = 0;
    while (start <= csv.size()) {
      std::size_t comma = csv.find(',', start);
      if (comma == std::string::npos) comma = csv.size();
      if (comma > start) out.emplace_back(csv.substr(start, comma - start));
      start = comma + 1;
    }
    return out;
  };
  std::string programs = args.get_string("programs", "");
  if (!programs.empty())
    req.set("programs", json::Value(comma_list(programs)));
  std::string paths = args.get_string("paths", "");
  if (!paths.empty()) req.set("paths", json::Value(comma_list(paths)));
  std::int64_t capacity = args.get_int("capacity", 0);
  if (capacity > 0)
    req.set("capacity", json::Value(static_cast<double>(capacity)));
  if (args.has("objective"))
    req.set("objective", json::Value(args.get_string("objective", "sum")));
  std::int64_t group_size = args.get_int("group-size", 0);
  if (group_size > 0)
    req.set("group_size", json::Value(static_cast<double>(group_size)));
  double deadline_ms = args.get_double("deadline-ms", 0.0);
  if (deadline_ms > 0.0)
    req.set("deadline_ms", json::Value(deadline_ms));
  std::int64_t trace_id = args.get_int("trace-id", 0);
  if (trace_id > 0)
    req.set("trace_id", json::Value(static_cast<double>(trace_id)));
  std::int64_t decision_id = args.get_int("decision-id", 0);
  if (decision_id > 0)
    req.set("decision_id", json::Value(static_cast<double>(decision_id)));
  std::int64_t limit = args.get_int("limit", 0);
  if (limit > 0) req.set("limit", json::Value(static_cast<double>(limit)));
  std::string realized = args.get_string("realized", "");
  if (!realized.empty()) {
    // Realized miss ratios in tenant order; "nan" marks a tenant that
    // made no accesses (serialized as JSON null, decoded back to NaN).
    json::Array ratios;
    std::size_t pos = 0;
    while (pos <= realized.size()) {
      std::size_t comma = realized.find(',', pos);
      if (comma == std::string::npos) comma = realized.size();
      if (comma > pos) {
        std::string tok = realized.substr(pos, comma - pos);
        if (tok == "nan" || tok == "null") {
          ratios.emplace_back(std::nan(""));
        } else {
          try {
            ratios.emplace_back(std::stod(tok));
          } catch (...) {
            OCPS_CHECK(false, "bad --realized entry '" << tok << "'");
          }
        }
      }
      pos = comma + 1;
    }
    req.set("realized", json::Value(std::move(ratios)));
  }

  auto timeout = std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
  serve::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(args.get_int("retries", 3));
  OCPS_CHECK(policy.max_attempts >= 1, "retries must be >= 1");
  policy.base_delay =
      std::chrono::milliseconds(args.get_int("retry-base-ms", 10));
  policy.max_delay =
      std::chrono::milliseconds(args.get_int("retry-max-ms", 500));
  policy.seed = static_cast<std::uint64_t>(args.get_int("retry-seed", 0xB0FF));

  Result<serve::Client> client = serve::Client::connect(endpoint, timeout);
  if (!client.ok()) {
    std::cerr << "error: " << client.error().to_string() << "\n";
    return 1;
  }
  Result<serve::Response> resp = Err(ErrorCode::kIoError, "not attempted");
  serve::RetryStats stats;
  if (policy.max_attempts > 1) {
    // Round-trip through the protocol decoder: the retry path needs a
    // typed Request (op idempotency, deadline budget, jitter salt), and
    // a bad --op fails here with the same message the daemon would give.
    Result<serve::Request> parsed = serve::parse_request(req.dump());
    if (!parsed.ok()) {
      std::cerr << "error: " << parsed.error().to_string() << "\n";
      return 1;
    }
    resp = client.value().call_with_retry(parsed.value(), policy, &stats);
  } else {
    resp = client.value().call(req, timeout);
  }
  if (!resp.ok()) {
    std::cerr << "error: " << resp.error().to_string() << "\n";
    return 1;
  }
  if (stats.attempts > 1)
    std::cerr << "note: " << stats.attempts << " attempts, "
              << stats.backoff_total.count() << "ms total backoff\n";
  std::cout << resp.value().body.dump() << "\n";
  if (!resp.value().ok) {
    std::cerr << "error: daemon replied " << resp.value().code << ": "
              << resp.value().error << "\n";
    return 1;
  }
  return 0;
}

// Same async-signal-safe drain contract as the server's handler.
std::atomic<serve::Router*> g_router{nullptr};

extern "C" void ocps_router_signal_handler(int) {
  if (serve::Router* r = g_router.load()) r->request_stop();
}

int cmd_router(const ArgParser& args) {
  obs::set_enabled(true);
  serve::RouterConfig config;
  config.socket_path = args.get_string("socket", "");
  config.listen_address = args.get_string("listen", "");
  OCPS_CHECK(!config.socket_path.empty() || !config.listen_address.empty(),
             "router needs a front listener: --socket PATH and/or "
             "--listen HOST:PORT");
  std::string backends = args.get_string("backends", "");
  std::size_t start = 0;
  while (start <= backends.size()) {
    std::size_t comma = backends.find(',', start);
    if (comma == std::string::npos) comma = backends.size();
    if (comma > start)
      config.backends.push_back(backends.substr(start, comma - start));
    start = comma + 1;
  }
  OCPS_CHECK(!config.backends.empty(),
             "router needs --backends A,B,... (daemon endpoints)");
  config.vnodes = static_cast<std::size_t>(args.get_int("vnodes", 64));
  config.breaker.failure_threshold =
      static_cast<int>(args.get_int("breaker-threshold", 3));
  config.breaker.cooldown =
      std::chrono::milliseconds(args.get_int("breaker-cooldown-ms", 1000));
  config.breaker.probe_successes =
      static_cast<int>(args.get_int("breaker-probes", 1));
  config.connect_timeout =
      std::chrono::milliseconds(args.get_int("connect-timeout-ms", 1000));
  config.io_timeout =
      std::chrono::milliseconds(args.get_int("io-timeout-ms", 5000));
  config.health_interval =
      std::chrono::milliseconds(args.get_int("health-interval-ms", 500));
  config.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  config.max_connections =
      static_cast<std::size_t>(args.get_int("max-conns", 256));
  config.metrics_port = static_cast<int>(args.get_int("metrics-port", 0));
  config.slo_p99_ms = args.get_double("slo-p99-ms", 0.0);
  config.slo_availability = args.get_double("slo-availability", 0.0);

  std::optional<NetFaultInjector> chaos;
  config.net_faults = make_chaos_injector(args, chaos);

  serve::Router router(std::move(config));
  g_router.store(&router);
  std::signal(SIGTERM, ocps_router_signal_handler);
  std::signal(SIGINT, ocps_router_signal_handler);

  Result<bool> started = router.start();
  if (!started.ok()) {
    g_router.store(nullptr);
    std::cerr << "error: " << started.error().to_string() << "\n";
    return 1;
  }
  std::cout << "routing across " << router.config().backends.size()
            << " backends";
  if (!router.config().socket_path.empty())
    std::cout << " on " << router.config().socket_path;
  if (router.bound_listen_port() > 0)
    std::cout << (router.config().socket_path.empty() ? " on" : " and")
              << " tcp port " << router.bound_listen_port();
  std::cout << "; SIGTERM drains" << std::endl;
  if (router.config().net_faults)
    std::cout << "CHAOS: network fault injection is armed" << std::endl;
  if (router.bound_metrics_port() > 0)
    std::cout << "fleet metrics on http://127.0.0.1:"
              << router.bound_metrics_port() << "/metrics" << std::endl;

  router.wait_until_stop_requested();
  std::cout << "draining..." << std::endl;
  router.stop();
  g_router.store(nullptr);

  serve::Router::Counters c = router.counters();
  std::cout << "drained: " << c.requests << " requests, " << c.forwarded
            << " forwarded, " << c.failovers << " failovers, "
            << c.relayed_errors << " relayed errors, " << c.no_backend
            << " no-backend, " << c.all_open << " all-open, "
            << c.deadline_exceeded << " past deadline, " << c.malformed
            << " malformed, " << c.reloads << " reloads\n";
  return 0;
}

// Sends one request to --socket / --addr and returns the response, for
// the one-shot observability subcommands (`trace`, `slo`).
Result<serve::Response> one_shot_request(const ArgParser& args,
                                         const char* command,
                                         const serve::Request& req) {
  std::string endpoint = args.get_string("addr", "");
  if (endpoint.empty()) endpoint = args.get_string("socket", "");
  OCPS_CHECK(!endpoint.empty(),
             "" << command << " needs --socket PATH or --addr HOST:PORT");
  auto timeout = std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
  Result<serve::Client> client = serve::Client::connect(endpoint, timeout);
  if (!client.ok()) return client.error();
  return client.value().call(serve::encode_request(req), timeout);
}

// `ocps trace <id>`: fetch every process's retained spans for one trace
// id (a router answers with its own spans plus every backend's, a daemon
// with just its own) and stitch them onto one wall-clock timeline.
int cmd_trace(const ArgParser& args) {
  OCPS_CHECK(args.positionals().size() == 2,
             "trace needs one id: ocps trace <id> --socket PATH");
  std::uint64_t trace_id = 0;
  try {
    trace_id = std::stoull(args.positionals()[1]);
  } catch (...) {
  }
  OCPS_CHECK(trace_id != 0, "trace id must be a positive integer");

  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kTrace;
  req.trace_id = trace_id;
  Result<serve::Response> resp = one_shot_request(args, "trace", req);
  if (!resp.ok()) {
    std::cerr << "error: " << resp.error().to_string() << "\n";
    return 1;
  }
  if (!resp.value().ok) {
    std::cerr << "error: endpoint replied " << resp.value().code << ": "
              << resp.value().error << "\n";
    return 1;
  }
  const json::Value* procs = resp.value().body.find("procs");
  OCPS_CHECK(procs && procs->is_array(),
             "malformed trace response: missing procs");

  // Stitch: each proc reports matching monotonic + wall-clock instants,
  // so wall_ns - mono_ns re-anchors its span timestamps (nanoseconds
  // since that process's private trace epoch) onto the shared wall
  // clock. Exact enough across processes on one machine.
  struct StitchedSpan {
    std::size_t proc = 0;   // index into proc_labels
    double wall_ns = 0.0;   // start, wall-clock
    double dur_ns = 0.0;
    double tid = 0.0;
    bool instant = false;
    std::string name;
    std::string cat;
    std::string arg_name;   // empty = no arg
    double arg = 0.0;
  };
  std::vector<std::string> proc_labels;
  std::vector<StitchedSpan> spans;
  for (const json::Value& proc : procs->as_array()) {
    std::size_t pi = proc_labels.size();
    proc_labels.push_back(proc.get_string(
        "proc", "proc" + std::to_string(pi)));
    double offset =
        proc.get_number("wall_ns", 0.0) - proc.get_number("mono_ns", 0.0);
    const json::Value* rows = proc.find("spans");
    if (!rows || !rows->is_array()) continue;
    for (const json::Value& row : rows->as_array()) {
      StitchedSpan s;
      s.proc = pi;
      s.wall_ns = row.get_number("ts_ns", 0.0) + offset;
      s.dur_ns = row.get_number("dur_ns", 0.0);
      s.tid = row.get_number("tid", 0.0);
      s.instant = row.get_bool("instant", false);
      s.name = row.get_string("name", "");
      s.cat = row.get_string("cat", "ocps");
      s.arg_name = row.get_string("arg_name", "");
      s.arg = row.get_number("arg", 0.0);
      spans.push_back(std::move(s));
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const StitchedSpan& a, const StitchedSpan& b) {
              return a.wall_ns < b.wall_ns;
            });

  if (spans.empty()) {
    std::cout << "trace " << trace_id << ": no spans retained ("
              << proc_labels.size()
              << " process(es) answered; the per-thread rings may have "
                 "recycled, or the id was never used)\n";
  } else {
    const double base = spans.front().wall_ns;
    std::cout << "trace " << trace_id << " — " << spans.size()
              << " span(s) across " << proc_labels.size()
              << " process(es)\n\n";
    TextTable t({"start", "duration", "process", "span", "arg"});
    for (const StitchedSpan& s : spans) {
      std::string arg;
      if (!s.arg_name.empty())
        arg = s.arg_name + "=" +
              std::to_string(static_cast<std::uint64_t>(s.arg));
      t.add_row({"+" + TextTable::num((s.wall_ns - base) / 1e6, 3) + "ms",
                 s.instant
                     ? std::string("!")
                     : TextTable::num(s.dur_ns / 1e6, 3) + "ms",
                 proc_labels[s.proc], std::string(s.cat) + "/" + s.name,
                 arg});
    }
    t.print(std::cout);
  }

  std::string out = args.get_string("out", "");
  if (!out.empty()) {
    // Chrome trace_event JSON: one pid per process (with process_name
    // metadata), timestamps rebased to the earliest span.
    std::ofstream os(out, std::ios::trunc);
    OCPS_CHECK(os.good(), "cannot open " << out << " for writing");
    const double base = spans.empty() ? 0.0 : spans.front().wall_ns;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t pi = 0; pi < proc_labels.size(); ++pi) {
      if (!first) os << ',';
      first = false;
      os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pi + 1
         << ",\"tid\":0,\"args\":{\"name\":\"" << proc_labels[pi]
         << "\"}}";
    }
    for (const StitchedSpan& s : spans) {
      os << ",{\"name\":\"" << s.name << "\",\"cat\":\"" << s.cat
         << "\",\"ph\":\"" << (s.instant ? 'i' : 'X')
         << "\",\"pid\":" << s.proc + 1 << ",\"tid\":" << s.tid
         << ",\"ts\":" << (s.wall_ns - base) / 1000.0;
      if (s.instant)
        os << ",\"s\":\"t\"";
      else
        os << ",\"dur\":" << s.dur_ns / 1000.0;
      os << ",\"args\":{\"trace_id\":" << trace_id;
      if (!s.arg_name.empty())
        os << ",\"" << s.arg_name
           << "\":" << static_cast<std::uint64_t>(s.arg);
      os << "}}";
    }
    os << "]}";
    OCPS_CHECK(os.good(), "write failed for " << out);
    std::cout << "\nwrote stitched Chrome trace (" << spans.size()
              << " spans, " << proc_labels.size() << " procs) to " << out
              << "\n";
  }
  return 0;
}

// `ocps slo`: one-shot view of an endpoint's SLO burn rates.
int cmd_slo(const ArgParser& args) {
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kSlo;
  Result<serve::Response> resp = one_shot_request(args, "slo", req);
  if (!resp.ok()) {
    std::cerr << "error: " << resp.error().to_string() << "\n";
    return 1;
  }
  if (!resp.value().ok) {
    std::cerr << "error: endpoint replied " << resp.value().code << ": "
              << resp.value().error << "\n";
    return 1;
  }
  const json::Value& body = resp.value().body;
  if (!body.get_bool("configured", false)) {
    std::cout << "no SLOs configured (start the endpoint with "
                 "--slo-p99-ms and/or --slo-availability)\n";
    return 0;
  }
  TextTable t({"objective", "target", "budget", "burn 5m", "burn 1h",
               "breaching"});
  if (const json::Value* objectives = body.find("objectives"))
    if (objectives->is_array())
      for (const json::Value& o : objectives->as_array())
        t.add_row({o.get_string("name", "?"),
                   TextTable::num(o.get_number("target", 0.0), 4),
                   TextTable::num(o.get_number("budget", 0.0), 4),
                   TextTable::num(o.get_number("burn_5m", 0.0), 3),
                   TextTable::num(o.get_number("burn_1h", 0.0), 3),
                   o.get_bool("breaching", false) ? "YES" : "no"});
  t.print(std::cout);
  double alerts_total = body.get_number("alerts_total", 0.0);
  std::cout << "breach alerts: " << alerts_total << " total\n";
  if (const json::Value* alerts = body.find("alerts"))
    if (alerts->is_array())
      for (const json::Value& a : alerts->as_array())
        std::cout << "  #" << a.get_number("seq", 0.0) << " "
                  << a.get_string("objective", "?") << " at +"
                  << TextTable::num(a.get_number("at_ns", 0.0) / 1e9, 1)
                  << "s: burn 5m "
                  << TextTable::num(a.get_number("burn_5m", 0.0), 3)
                  << ", 1h "
                  << TextTable::num(a.get_number("burn_1h", 0.0), 3)
                  << "\n";
  return 0;
}

// Helpers shared by `ocps decisions` and `ocps why`: render wire-shape
// decision records (serve/protocol.hpp decision_json) as tables.

std::string alloc_summary(const json::Value& rec, const char* key) {
  std::string out;
  if (const json::Value* a = rec.find(key))
    if (a->is_array())
      for (const json::Value& u : a->as_array()) {
        if (!out.empty()) out += "/";
        out += std::to_string(static_cast<long long>(
            u.is_number() ? u.as_number() : 0.0));
      }
  return out;
}

// Mean of the finite entries of a number-or-null array ("error",
// "predicted_mr", ...); NaN when none.
double finite_mean(const json::Value& rec, const char* key, bool absolute) {
  double sum = 0.0;
  std::size_t n = 0;
  if (const json::Value* arr = rec.find(key))
    if (arr->is_array())
      for (const json::Value& v : arr->as_array())
        if (v.is_number() && std::isfinite(v.as_number())) {
          sum += absolute ? std::fabs(v.as_number()) : v.as_number();
          ++n;
        }
  return n > 0 ? sum / static_cast<double>(n) : std::nan("");
}

void print_drift_json(const json::Value& body) {
  const json::Value* drift = body.find("drift");
  if (!drift) return;
  std::cout << "drift: EWMA |error| "
            << TextTable::num(drift->get_number("ewma_abs_error", 0.0), 5)
            << ", bias " << TextTable::num(drift->get_number("bias", 0.0), 5)
            << " over " << drift->get_number("samples", 0.0) << " samples";
  if (drift->get_bool("configured", false))
    std::cout << " (threshold "
              << TextTable::num(drift->get_number("threshold", 0.0), 5)
              << (drift->get_bool("breaching", false) ? ", BREACHING" : "")
              << ")";
  else
    std::cout << " (alerting off; set --drift-threshold)";
  std::cout << "\n";
  if (const json::Value* alerts = drift->find("alerts"))
    if (alerts->is_array())
      for (const json::Value& a : alerts->as_array())
        std::cout << "  drift alert #" << a.get_number("seq", 0.0)
                  << " at decision " << a.get_number("decision_id", 0.0)
                  << ": EWMA |error| "
                  << TextTable::num(a.get_number("ewma_abs_error", 0.0), 5)
                  << " > " << TextTable::num(a.get_number("threshold", 0.0), 5)
                  << ", worst tenant " << a.get_string("tenant", "?") << "\n";
}

// One endpoint's audit view (the daemon body shape: "decisions" +
// "accuracy" + "drift").
void print_decision_body(const json::Value& body) {
  TextTable t({"id", "epoch", "trigger", "alloc", "reconciled", "mean |err|",
               "note"});
  if (const json::Value* rows = body.find("decisions"))
    if (rows->is_array())
      for (const json::Value& d : rows->as_array()) {
        const bool reconciled = d.get_bool("reconciled", false);
        double mean_err = finite_mean(d, "error", /*absolute=*/true);
        t.add_row(
            {std::to_string(
                 static_cast<long long>(d.get_number("decision_id", 0.0))),
             std::to_string(
                 static_cast<long long>(d.get_number("epoch", 0.0))),
             d.get_string("trigger", "?"), alloc_summary(d, "alloc"),
             !reconciled ? "no"
                         : (d.get_bool("partial", false) ? "partial" : "yes"),
             std::isfinite(mean_err) ? TextTable::num(mean_err, 5) : "-",
             d.get_string("note", "")});
      }
  t.print(std::cout);
  if (const json::Value* acc = body.find("accuracy"))
    std::cout << "accuracy: " << acc->get_number("decisions_total", 0.0)
              << " decisions, " << acc->get_number("reconciled", 0.0)
              << " reconciled, mean |error| "
              << TextTable::num(acc->get_number("mean_abs_error", 0.0), 5)
              << ", max "
              << TextTable::num(acc->get_number("max_abs_error", 0.0), 5)
              << ", bias "
              << TextTable::num(acc->get_number("bias", 0.0), 5) << "\n";
  print_drift_json(body);
}

// `ocps decisions`: one-shot audit-trail view. A router body carries a
// "backends" array (one audit view per daemon); a daemon body is the
// view itself.
int cmd_decisions(const ArgParser& args) {
  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kDecisions;
  std::int64_t limit = args.get_int("limit", 0);
  OCPS_CHECK(limit >= 0, "limit must be >= 0");
  req.limit = static_cast<std::size_t>(limit);
  Result<serve::Response> resp = one_shot_request(args, "decisions", req);
  if (!resp.ok()) {
    std::cerr << "error: " << resp.error().to_string() << "\n";
    return 1;
  }
  if (!resp.value().ok) {
    std::cerr << "error: endpoint replied " << resp.value().code << ": "
              << resp.value().error << "\n";
    return 1;
  }
  const json::Value& body = resp.value().body;
  const json::Value* backends = body.find("backends");
  if (backends && backends->is_array()) {
    for (const json::Value& b : backends->as_array()) {
      std::cout << "backend " << b.get_number("backend", 0.0) << " ("
                << b.get_string("endpoint", "?") << "):\n";
      print_decision_body(b);
      std::cout << "\n";
    }
    return 0;
  }
  print_decision_body(body);
  return 0;
}

// `ocps why <decision-id>`: the audit-trail drill-down — what this
// decision changed relative to the previous one, and how its predictions
// held up.
int cmd_why(const ArgParser& args) {
  OCPS_CHECK(args.positionals().size() == 2,
             "why needs one id: ocps why <decision-id> --socket PATH");
  std::uint64_t decision_id = 0;
  try {
    decision_id = std::stoull(args.positionals()[1]);
  } catch (...) {
  }
  OCPS_CHECK(decision_id != 0, "decision id must be a positive integer");

  serve::Request req;
  req.id = 1;
  req.op = serve::Op::kDecisions;
  req.decision_id = decision_id;
  Result<serve::Response> resp = one_shot_request(args, "why", req);
  if (!resp.ok()) {
    std::cerr << "error: " << resp.error().to_string() << "\n";
    return 1;
  }
  if (!resp.value().ok) {
    std::cerr << "error: endpoint replied " << resp.value().code << ": "
              << resp.value().error << "\n";
    return 1;
  }
  // Through a router the record arrives inside the first "backends"
  // entry (ids are per-daemon; the router already 404s when nobody knows
  // the id).
  const json::Value* view = &resp.value().body;
  if (const json::Value* backends = view->find("backends"))
    if (backends->is_array() && !backends->as_array().empty()) {
      const json::Value& b = backends->as_array().front();
      std::cout << "answered by backend " << b.get_number("backend", 0.0)
                << " (" << b.get_string("endpoint", "?") << ")\n";
      view = &b;
    }
  const json::Value* d = view->find("decision");
  if (!d) {
    std::cerr << "error: endpoint answered without a decision record\n";
    return 1;
  }

  std::cout << "decision #" << d->get_number("decision_id", 0.0)
            << " — trigger " << d->get_string("trigger", "?") << " — epoch "
            << d->get_number("epoch", 0.0) << " — solve "
            << TextTable::num(d->get_number("solve_ns", 0.0) / 1e6, 3)
            << " ms"
            << (d->get_bool("incremental", false) ? " (incremental)" : "")
            << "\n";
  std::string note = d->get_string("note", "");
  if (!note.empty()) std::cout << "note: " << note << "\n";

  // Previous allocation by tenant name (consecutive controller decisions
  // share the tenant list; serve decisions may not).
  std::map<std::string, double> prev_alloc;
  if (const json::Value* prev = view->find("previous"))
    if (const json::Value* names = prev->find("tenants"))
      if (const json::Value* units = prev->find("alloc"))
        if (names->is_array() && units->is_array() &&
            names->as_array().size() == units->as_array().size())
          for (std::size_t i = 0; i < names->as_array().size(); ++i)
            if (names->as_array()[i].is_string() &&
                units->as_array()[i].is_number())
              prev_alloc[names->as_array()[i].as_string()] =
                  units->as_array()[i].as_number();

  auto cell = [](const json::Value* arr, std::size_t i,
                 int digits) -> std::string {
    if (!arr || !arr->is_array() || i >= arr->as_array().size())
      return "-";
    const json::Value& v = arr->as_array()[i];
    if (!v.is_number() || !std::isfinite(v.as_number())) return "-";
    return TextTable::num(v.as_number(), digits);
  };

  const json::Value* tenants = d->find("tenants");
  const json::Value* alloc = d->find("alloc");
  const json::Value* predicted = d->find("predicted_mr");
  const json::Value* realized = d->find("realized_mr");
  const json::Value* error = d->find("error");
  const json::Value* degraded = d->find("tenant_degraded");
  const std::size_t n =
      tenants && tenants->is_array() ? tenants->as_array().size() : 0;
  TextTable t({"tenant", "prev", "blocks", "delta", "predicted", "realized",
               "error", "degraded"});
  for (std::size_t i = 0; i < n; ++i) {
    const json::Value& name_v = tenants->as_array()[i];
    std::string name = name_v.is_string() ? name_v.as_string() : "?";
    double units = alloc && alloc->is_array() && i < alloc->as_array().size() &&
                           alloc->as_array()[i].is_number()
                       ? alloc->as_array()[i].as_number()
                       : 0.0;
    auto prev_it = prev_alloc.find(name);
    std::string prev_cell = "-", delta_cell = "-";
    if (prev_it != prev_alloc.end()) {
      prev_cell = std::to_string(static_cast<long long>(prev_it->second));
      long long delta = static_cast<long long>(units - prev_it->second);
      delta_cell = (delta >= 0 ? "+" : "") + std::to_string(delta);
    }
    bool is_degraded = degraded && degraded->is_array() &&
                       i < degraded->as_array().size() &&
                       degraded->as_array()[i].is_bool() &&
                       degraded->as_array()[i].as_bool();
    t.add_row({name, prev_cell,
               std::to_string(static_cast<long long>(units)), delta_cell,
               cell(predicted, i, 5), cell(realized, i, 5), cell(error, i, 5),
               is_degraded ? "YES" : ""});
  }
  t.print(std::cout);

  if (!d->get_bool("reconciled", false))
    std::cout << "not reconciled yet — realized ratios arrive one epoch "
                 "later (or via the reconcile op)\n";
  else if (d->get_bool("partial", false))
    std::cout << "reconciled against a truncated trailing epoch\n";

  // Drift alerts that point at this decision.
  if (const json::Value* drift = view->find("drift"))
    if (const json::Value* alerts = drift->find("alerts"))
      if (alerts->is_array())
        for (const json::Value& a : alerts->as_array())
          if (static_cast<std::uint64_t>(
                  a.get_number("decision_id", 0.0)) == decision_id)
            std::cout << "drift alert #" << a.get_number("seq", 0.0)
                      << " fired on this decision: EWMA |error| "
                      << TextTable::num(
                             a.get_number("ewma_abs_error", 0.0), 5)
                      << " > "
                      << TextTable::num(a.get_number("threshold", 0.0), 5)
                      << ", worst tenant " << a.get_string("tenant", "?")
                      << "\n";
  return 0;
}

// `ocps top`: poll the daemon's metrics + health ops and redraw a compact
// dashboard. Rates are first differences between consecutive polls.
int cmd_top(const ArgParser& args) {
  std::string socket = args.get_string("socket", "");
  OCPS_CHECK(!socket.empty(), "top needs --socket PATH");
  std::int64_t interval_ms = args.get_int("interval-ms", 1000);
  OCPS_CHECK(interval_ms > 0, "interval-ms must be positive");
  std::int64_t iterations = args.get_int("iterations", 0);
  bool ansi = !args.has("no-ansi");
  auto timeout = std::chrono::milliseconds(args.get_int("timeout-ms", 5000));

  Result<serve::Client> client = serve::Client::connect(socket);
  if (!client.ok()) {
    std::cerr << "error: " << client.error().to_string() << "\n";
    return 1;
  }

  double prev_answered = 0.0, prev_shed = 0.0, prev_expired = 0.0;
  auto prev_time = std::chrono::steady_clock::now();
  bool have_prev = false;

  for (std::int64_t frame = 0; iterations == 0 || frame < iterations;
       ++frame) {
    if (frame > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));

    serve::Request mreq;
    mreq.id = 2 * frame + 1;
    mreq.op = serve::Op::kMetrics;
    Result<serve::Response> metrics_resp =
        client.value().call(serve::encode_request(mreq), timeout);
    serve::Request hreq;
    hreq.id = 2 * frame + 2;
    hreq.op = serve::Op::kHealth;
    Result<serve::Response> health_resp =
        client.value().call(serve::encode_request(hreq), timeout);
    if (!metrics_resp.ok() || !health_resp.ok()) {
      const Error& err = metrics_resp.ok() ? health_resp.error()
                                           : metrics_resp.error();
      std::cerr << "error: " << err.to_string() << "\n";
      return 1;
    }
    if (!metrics_resp.value().ok) {
      std::cerr << "error: daemon replied " << metrics_resp.value().code
                << ": " << metrics_resp.value().error << "\n";
      return 1;
    }

    const json::Value& health = health_resp.value().body;
    const json::Value* metrics = metrics_resp.value().body.find("metrics");
    auto num = [&](const char* section, const std::string& name) {
      const json::Value* s = metrics ? metrics->find(section) : nullptr;
      return s ? s->get_number(name, 0.0) : 0.0;
    };

    double answered = num("counters", "serve.answered");
    double shed = num("counters", "serve.shed");
    double expired = num("counters", "serve.deadline_exceeded");
    double batches = num("counters", "serve.batches");
    double queue = num("gauges", "serve.queue_depth");
    double window_s = num("gauges", "serve.latency_window_s");
    double batch_count = 0.0, batch_sum = 0.0;
    if (metrics)
      if (const json::Value* hs = metrics->find("histograms"))
        if (const json::Value* h = hs->find("serve.batch_size")) {
          batch_count = h->get_number("count", 0.0);
          batch_sum = h->get_number("sum", 0.0);
        }

    auto now = std::chrono::steady_clock::now();
    double dt = std::chrono::duration<double>(now - prev_time).count();
    double rps = 0.0, shed_ps = 0.0, exp_ps = 0.0;
    if (have_prev && dt > 0.0) {
      rps = (answered - prev_answered) / dt;
      shed_ps = (shed - prev_shed) / dt;
      exp_ps = (expired - prev_expired) / dt;
    }
    prev_answered = answered;
    prev_shed = shed;
    prev_expired = expired;
    prev_time = now;
    have_prev = true;

    std::ostringstream frame_out;
    if (ansi) frame_out << "\x1b[H\x1b[2J";
    frame_out << "ocps top — " << socket << " — profile set v"
              << static_cast<std::uint64_t>(health.get_number("version", 0.0))
              << " — up "
              << TextTable::num(health.get_number("uptime_ms", 0.0) / 1000.0,
                                1)
              << "s"
              << (health.get_bool("draining", false) ? " — DRAINING" : "")
              << "\n";
    if (const json::Value* bi =
            metrics ? metrics->find("build_info") : nullptr)
      frame_out << "build " << bi->get_string("git_sha", "?") << " — "
                << bi->get_string("compiler", "?") << " — simd "
                << bi->get_string("simd_kernel", "?") << "\n";
    frame_out << "\n";
    frame_out << "  throughput  " << TextTable::num(rps, 1)
              << " req/s    answered " << answered << "    shed " << shed
              << " (" << TextTable::num(shed_ps, 1) << "/s)    504 "
              << expired << " (" << TextTable::num(exp_ps, 1) << "/s)\n";
    frame_out << "  queue depth " << queue << "    batches " << batches
              << "    avg batch "
              << TextTable::num(batch_count > 0.0 ? batch_sum / batch_count
                                                  : 0.0,
                                2)
              << "\n";
    frame_out << "  latency ms  p50 "
              << TextTable::num(num("gauges", "serve.request_latency.p50"), 3)
              << "   p95 "
              << TextTable::num(num("gauges", "serve.request_latency.p95"), 3)
              << "   p99 "
              << TextTable::num(num("gauges", "serve.request_latency.p99"), 3)
              << "   (lifetime)\n";
    frame_out << "  window      p50 "
              << TextTable::num(
                     num("gauges", "serve.request_latency.window.p50"), 3)
              << "   p95 "
              << TextTable::num(
                     num("gauges", "serve.request_latency.window.p95"), 3)
              << "   p99 "
              << TextTable::num(
                     num("gauges", "serve.request_latency.window.p99"), 3)
              << "   (last " << window_s << "s)\n";
    frame_out << "  stage p99   ";
    static const char* kStages[] = {"queue_wait", "batch_linger", "solve",
                                    "serialize", "network"};
    for (const char* stage : kStages)
      frame_out << stage << " "
                << TextTable::num(
                       num("gauges", std::string("serve.stage.") + stage +
                                         ".window.p99"),
                       3)
                << "   ";
    frame_out << "(ms)\n";
    // Decision-quality plane: predicted-vs-realized accounting + drift.
    frame_out << "  decisions   total " << num("gauges", "dp.decision.total")
              << "    reconciled "
              << num("gauges", "dp.decision.reconciled") << "    mean |err| "
              << TextTable::num(
                     num("gauges", "dp.decision.mean_abs_error"), 5)
              << "    bias "
              << TextTable::num(num("gauges", "dp.decision.bias"), 5)
              << "\n";
    frame_out << "  drift       EWMA |err| "
              << TextTable::num(num("gauges", "dp.drift.ewma_abs_error"), 5)
              << "    err p99 "
              << TextTable::num(
                     num("gauges", "dp.prediction_error.window.p99"), 5)
              << "    alerts "
              << num("gauges", "dp.drift.alerts_total")
              << (num("gauges", "dp.drift.breaching") > 0.0 ? "    BREACHING"
                                                            : "")
              << "\n";
    std::cout << frame_out.str() << std::flush;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  ArgParser args(argc, argv, /*flags=*/{"binary", "no-ansi"});

  // Every subcommand declares its flags; anything else is rejected with a
  // nearest-match suggestion instead of being silently ignored.
  const std::map<std::string, std::vector<std::string>> known_flags = {
      {"profile", {"block-bytes", "binary", "rate", "name", "o"}},
      {"mrc", {"capacity"}},
      {"predict", {"capacity"}},
      {"optimize", {"capacity", "baseline", "objective"}},
      {"simulate", {"capacity", "block-bytes", "warmup"}},
      {"sweep", {"capacity", "group-size", "threads"}},
      {"phases", {"block-bytes", "binary", "window", "threshold"}},
      {"controller",
       {"capacity", "block-bytes", "binary", "epoch", "sampling-rate",
        "min-units", "max-delta", "policy", "drift-alpha", "drift-threshold",
        "decisions-out", "fault-rate", "fault-nan", "fault-spike",
        "fault-truncate", "fault-drop", "fault-dp-fail", "fault-seed",
        "trace-out", "metrics-out"}},
      {"stats",
       {"capacity", "block-bytes", "binary", "epoch", "length", "trace-out",
        "metrics-out", "socket", "timeout-ms"}},
      {"serve",
       {"socket", "listen", "max-conns", "io-timeout-ms", "capacity",
        "max-batch", "linger-ms", "queue-cap", "threads", "deadline-ms",
        "metrics-port", "slowlog-cap", "window-s", "slo-p99-ms",
        "slo-availability", "decision-log-cap", "drift-alpha",
        "drift-threshold", "trace-out", "metrics-out", "chaos-accept-fail",
        "chaos-reset", "chaos-trickle", "chaos-stall", "chaos-stall-ms",
        "chaos-seed"}},
      {"router",
       {"socket", "listen", "backends", "vnodes", "breaker-threshold",
        "breaker-cooldown-ms", "breaker-probes", "connect-timeout-ms",
        "io-timeout-ms", "health-interval-ms", "deadline-ms", "max-conns",
        "metrics-port", "slo-p99-ms", "slo-availability",
        "chaos-accept-fail", "chaos-reset", "chaos-trickle", "chaos-stall",
        "chaos-stall-ms", "chaos-seed"}},
      {"query",
       {"socket", "addr", "op", "programs", "paths", "capacity", "objective",
        "group-size", "deadline-ms", "trace-id", "decision-id", "limit",
        "realized", "timeout-ms", "retries", "retry-base-ms", "retry-max-ms",
        "retry-seed"}},
      {"trace", {"socket", "addr", "out", "timeout-ms"}},
      {"slo", {"socket", "addr", "timeout-ms"}},
      {"decisions", {"socket", "addr", "limit", "timeout-ms"}},
      {"why", {"socket", "addr", "timeout-ms"}},
      {"top",
       {"socket", "interval-ms", "iterations", "no-ansi", "timeout-ms"}},
  };

  try {
    auto known = known_flags.find(command);
    if (known != known_flags.end()) {
      // Flags that other subcommands accept get routed ("--threads is
      // valid for: serve, sweep") instead of a nearest-typo guess.
      std::map<std::string, std::string> known_elsewhere;
      for (const auto& [other, flags] : known_flags) {
        if (other == command) continue;
        for (const std::string& flag : flags) {
          if (std::find(known->second.begin(), known->second.end(), flag) !=
              known->second.end())
            continue;
          std::string& commands = known_elsewhere[flag];
          if (!commands.empty()) commands += ", ";
          commands += other;
        }
      }
      args.reject_unknown(known->second, known_elsewhere);
    }
    if (command == "profile") return cmd_profile(args);
    if (command == "mrc") return cmd_mrc(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "optimize") return cmd_optimize(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "phases") return cmd_phases(args);
    if (command == "controller") return cmd_controller(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "router") return cmd_router(args);
    if (command == "query") return cmd_query(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "slo") return cmd_slo(args);
    if (command == "decisions") return cmd_decisions(args);
    if (command == "why") return cmd_why(args);
    if (command == "top") return cmd_top(args);
    return usage();
  } catch (const CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
