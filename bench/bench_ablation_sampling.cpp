// Ablation (§VII-A practicality): full-trace footprint profiling vs
// bursty sampling (after Wang et al.'s ABF). The paper uses full traces
// "to have reproducible results" but argues sampling makes the analysis
// deployable (~0.09 s/program). This bench sweeps the sampling fraction
// and reports footprint and MRC error plus profiling speedup.
#include <iostream>

#include "common.hpp"
#include "locality/hotl.hpp"
#include "locality/sampling.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;

  struct Config {
    const char* label;
    std::size_t burst, gap;
  };
  const Config configs[] = {
      {"1/2 sampled", 20000, 20000},
      {"1/5 sampled", 20000, 80000},
      {"1/10 sampled", 10000, 90000},
      {"1/20 sampled", 10000, 190000},
  };

  std::cout << "=== Ablation: full-trace vs bursty-sampled footprints ("
            << suite.models.size() << " programs) ===\n\n";
  TextTable t({"schedule", "sampling fraction", "avg fp err (blocks)",
               "avg mrc err", "max mrc err", "profiling speedup"});

  for (const auto& config : configs) {
    double fp_err = 0.0, mrc_err_sum = 0.0, mrc_err_max = 0.0;
    double frac = 0.0;
    double full_time = 0.0, sampled_time = 0.0;
    for (std::size_t p = 0; p < suite.models.size(); ++p) {
      Trace trace = suite_trace(suite, p);

      PhaseTimer full_timer("sampling.full_profile");
      FootprintCurve full = compute_footprint(trace);
      full_time += full_timer.stop();
      SamplingConfig sc;
      sc.burst_length = config.burst;
      sc.gap_length = config.gap;
      sc.jitter_seed = 1 + p;
      PhaseTimer sampled_timer("sampling.sampled_profile");
      SampledFootprint sampled = sampled_footprint(trace, sc);
      sampled_time += sampled_timer.stop();

      fp_err += footprint_max_error(full, sampled.footprint);
      frac += sampled.sampling_fraction;

      // MRC error on the window range the sample can see. The sampled
      // footprint saturates at the per-burst distinct count, so compare
      // only below that size.
      MissRatioCurve full_mrc = hotl_mrc(full, capacity);
      MissRatioCurve samp_mrc = hotl_mrc(sampled.footprint, capacity);
      std::size_t cap_seen = std::min<std::size_t>(
          capacity,
          static_cast<std::size_t>(sampled.footprint.fp.back() * 0.9));
      double worst = 0.0, sum = 0.0;
      std::size_t counted = 0;
      for (std::size_t c = 1; c <= cap_seen; ++c) {
        double e = std::abs(full_mrc.ratio(c) - samp_mrc.ratio(c));
        worst = std::max(worst, e);
        sum += e;
        ++counted;
      }
      if (counted > 0) mrc_err_sum += sum / static_cast<double>(counted);
      mrc_err_max = std::max(mrc_err_max, worst);
    }
    double n = static_cast<double>(suite.models.size());
    t.add_row({config.label, TextTable::pct(frac / n, 1),
               TextTable::num(fp_err / n, 2),
               TextTable::num(mrc_err_sum / n, 4),
               TextTable::num(mrc_err_max, 4),
               TextTable::num(full_time / std::max(sampled_time, 1e-9), 1) +
                   "x"});
  }
  emit_table(t, "ablation_sampling");

  std::cout << "\nExpected: error grows slowly as the sampling fraction "
               "drops; phased programs (mcf, soplex, wrf) dominate the max "
               "error because a burst can land inside one phase. This is "
               "the accuracy/cost trade-off behind ABF profiling.\n";
  return 0;
}
