# Empty compiler generated dependencies file for corun_scheduler.
# This may be replaced when dependencies are built.
