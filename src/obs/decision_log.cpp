#include "obs/decision_log.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace ocps::obs {

const char* decision_trigger_name(DecisionTrigger t) {
  switch (t) {
    case DecisionTrigger::kEpoch: return "epoch";
    case DecisionTrigger::kReload: return "reload";
    case DecisionTrigger::kFallback: return "fallback";
    case DecisionTrigger::kRequest: return "request";
  }
  return "unknown";
}

DecisionLog::DecisionLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

std::uint64_t DecisionLog::steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t DecisionLog::record(DecisionRecord rec, std::uint64_t now_ns) {
  const std::size_t n = rec.tenants.size();
  rec.predicted_mr.resize(n, std::nan(""));
  rec.alloc.resize(n, 0);
  rec.tenant_degraded.resize(n, false);
  rec.reconciled = false;
  rec.partial = false;
  rec.reconciled_at_ns = 0;
  rec.realized_mr.clear();
  rec.error.clear();
  rec.at_ns = now_ns;

  std::lock_guard<std::mutex> lock(mu_);
  rec.id = ++next_id_;
  const std::uint64_t id = rec.id;
  ring_[(id - 1) % capacity_] = std::move(rec);
  return id;
}

DecisionLog::ReconcileStatus DecisionLog::reconcile(
    std::uint64_t id, const std::vector<double>& realized, bool partial,
    std::uint64_t now_ns, DecisionRecord* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > next_id_) return ReconcileStatus::kUnknownId;
  DecisionRecord& rec = ring_[(id - 1) % capacity_];
  if (rec.id != id) return ReconcileStatus::kUnknownId;  // evicted
  if (rec.reconciled) return ReconcileStatus::kAlreadyReconciled;
  if (realized.size() != rec.tenants.size())
    return ReconcileStatus::kSizeMismatch;

  rec.realized_mr = realized;
  rec.error.resize(realized.size());
  for (std::size_t i = 0; i < realized.size(); ++i) {
    // A non-finite prediction propagates as-is (histograms route it to
    // bucket 0); a zero-access tenant (realized NaN) yields a NaN error.
    // Either way the sample is excluded from the accuracy accumulators.
    const double err = rec.predicted_mr[i] - realized[i];
    rec.error[i] = err;
    if (std::isfinite(err)) {
      ++error_samples_;
      sum_abs_error_ += std::fabs(err);
      max_abs_error_ = std::max(max_abs_error_, std::fabs(err));
      sum_signed_error_ += err;
    }
  }
  rec.reconciled = true;
  rec.partial = partial;
  rec.reconciled_at_ns = now_ns;
  ++reconciled_total_;
  if (out) *out = rec;
  return ReconcileStatus::kOk;
}

bool DecisionLog::find(std::uint64_t id, DecisionRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > next_id_) return false;
  const DecisionRecord& rec = ring_[(id - 1) % capacity_];
  if (rec.id != id) return false;
  if (out) *out = rec;
  return true;
}

std::vector<DecisionRecord> DecisionLog::recent(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DecisionRecord> out;
  const std::uint64_t newest = next_id_;
  const std::uint64_t span = std::min<std::uint64_t>(
      {newest, capacity_, limit == 0 ? capacity_ : limit});
  out.reserve(span);
  for (std::uint64_t k = 0; k < span; ++k) {
    const std::uint64_t id = newest - k;
    const DecisionRecord& rec = ring_[(id - 1) % capacity_];
    if (rec.id == id) out.push_back(rec);
  }
  return out;
}

DecisionAccuracy DecisionLog::accuracy() const {
  std::lock_guard<std::mutex> lock(mu_);
  DecisionAccuracy a;
  a.decisions_total = next_id_;
  a.reconciled_total = reconciled_total_;
  a.error_samples = error_samples_;
  if (error_samples_ > 0) {
    a.mean_abs_error = sum_abs_error_ / static_cast<double>(error_samples_);
    a.max_abs_error = max_abs_error_;
    a.mean_signed_error =
        sum_signed_error_ / static_cast<double>(error_samples_);
  }
  return a;
}

std::uint64_t DecisionLog::last_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {}

void DriftDetector::fold(Ewma& e, double err) const {
  const double abs_err = std::fabs(err);
  if (e.samples == 0) {
    e.abs = abs_err;
    e.bias = err;
  } else {
    e.abs = config_.alpha * abs_err + (1.0 - config_.alpha) * e.abs;
    e.bias = config_.alpha * err + (1.0 - config_.alpha) * e.bias;
  }
  ++e.samples;
}

void DriftDetector::observe(const DecisionRecord& rec, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  for (std::size_t i = 0; i < rec.error.size(); ++i) {
    const double err = rec.error[i];
    if (!std::isfinite(err)) continue;  // no prediction / no accesses
    any = true;
    fold(aggregate_, err);
    const std::string& name =
        i < rec.tenants.size() ? rec.tenants[i] : std::string();
    auto it = std::lower_bound(
        tenants_.begin(), tenants_.end(), name,
        [](const auto& a, const std::string& b) { return a.first < b; });
    if (it == tenants_.end() || it->first != name)
      it = tenants_.insert(it, {name, Ewma{}});
    fold(it->second, err);
  }
  if (!any || config_.threshold <= 0.0) return;

  const bool over = aggregate_.abs > config_.threshold;
  if (over && !breaching_) {
    // Edge: attribute the breach to the tenant with the worst EWMA.
    DriftAlert alert;
    alert.seq = ++alerts_total_;
    alert.at_ns = now_ns;
    alert.decision_id = rec.id;
    alert.ewma_abs = aggregate_.abs;
    alert.threshold = config_.threshold;
    double worst = -1.0;
    for (const auto& [name, e] : tenants_) {
      if (e.abs > worst) {
        worst = e.abs;
        alert.tenant = name;
      }
    }
    if (alerts_.size() >= config_.alert_capacity && !alerts_.empty())
      alerts_.erase(alerts_.begin());
    alerts_.push_back(std::move(alert));
  }
  breaching_ = over;  // re-arm once the EWMA drops back below
}

DriftStatus DriftDetector::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftStatus s;
  s.configured = config_.threshold > 0.0;
  s.alpha = config_.alpha;
  s.threshold = config_.threshold;
  s.ewma_abs = aggregate_.abs;
  s.bias = aggregate_.bias;
  s.samples = aggregate_.samples;
  s.breaching = breaching_;
  s.alerts_total = alerts_total_;
  s.tenants.reserve(tenants_.size());
  for (const auto& [name, e] : tenants_) {
    DriftTenantStatus t;
    t.tenant = name;
    t.ewma_abs = e.abs;
    t.bias = e.bias;
    t.samples = e.samples;
    s.tenants.push_back(std::move(t));
  }
  return s;
}

std::vector<DriftAlert> DriftDetector::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

std::uint64_t DriftDetector::alerts_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_total_;
}

void record_prediction_errors(const DecisionRecord& rec,
                              DriftDetector* drift,
                              WindowedHistogram* window,
                              std::uint64_t now_ns) {
  if (drift) drift->observe(rec, now_ns);
  if (!enabled()) return;
  static Histogram& aggregate = histogram("dp.prediction_error");
  for (std::size_t i = 0; i < rec.error.size(); ++i) {
    const double err = rec.error[i];
    if (std::isnan(err)) continue;  // zero-access tenant: skip entirely
    // Finite errors are scaled to ppm so [-1,1] spreads across the log
    // buckets; infinities pass through raw and land in bucket 0.
    const double scaled =
        std::isfinite(err) ? std::fabs(err) * kErrorScale : err;
    aggregate.observe(scaled);
    if (i < rec.tenants.size() && !rec.tenants[i].empty())
      histogram("dp.prediction_error." + rec.tenants[i]).observe(scaled);
    if (window) window->observe_at(scaled, now_ns);
    note_exemplar("dp.prediction_error", scaled, rec.id);
  }
}

void publish_decision_metrics(const DecisionLog& log,
                              const DriftDetector* drift,
                              const WindowedHistogram* window,
                              std::uint64_t now_ns) {
  if (!enabled()) return;
  const DecisionAccuracy a = log.accuracy();
  gauge("dp.decision.total").set(static_cast<double>(a.decisions_total));
  gauge("dp.decision.reconciled")
      .set(static_cast<double>(a.reconciled_total));
  gauge("dp.decision.last_id").set(static_cast<double>(log.last_id()));
  gauge("dp.decision.mean_abs_error").set(a.mean_abs_error);
  gauge("dp.decision.max_abs_error").set(a.max_abs_error);
  gauge("dp.decision.bias").set(a.mean_signed_error);
  if (drift) {
    const DriftStatus s = drift->status();
    gauge("dp.drift.ewma_abs_error").set(s.ewma_abs);
    gauge("dp.drift.bias").set(s.bias);
    gauge("dp.drift.threshold").set(s.threshold);
    gauge("dp.drift.breaching").set(s.breaching ? 1.0 : 0.0);
    gauge("dp.drift.alerts_total").set(static_cast<double>(s.alerts_total));
    gauge("dp.drift.samples").set(static_cast<double>(s.samples));
  }
  if (window) {
    // Windowed quantiles are reported back in ratio units.
    const HistogramSnapshot snap =
        window->snapshot_at("dp.prediction_error", now_ns);
    gauge("dp.prediction_error.window.p50")
        .set(histogram_quantile(snap, 0.50) / kErrorScale);
    gauge("dp.prediction_error.window.p99")
        .set(histogram_quantile(snap, 0.99) / kErrorScale);
  }
}

}  // namespace ocps::obs
