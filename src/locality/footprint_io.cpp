#include "locality/footprint_io.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

void save_footprint_file(const FootprintFile& data, const std::string& path,
                         std::size_t max_knots) {
  std::ofstream os(path, std::ios::trunc);
  OCPS_CHECK(os.good(), "cannot open " << path << " for writing");
  PiecewiseLinear curve = data.footprint;
  if (max_knots > 0 && curve.size() > max_knots)
    curve = curve.simplify_to(0.005, max_knots);
  os << "ocps-footprint 1\n";
  os << "name " << data.name << '\n';
  os << "access_rate " << std::setprecision(17) << data.access_rate << '\n';
  os << "trace_length " << data.trace_length << '\n';
  os << "distinct " << data.distinct << '\n';
  os << "knots " << curve.size() << '\n';
  os << std::setprecision(17);
  for (std::size_t i = 0; i < curve.size(); ++i)
    os << curve.xs()[i] << ' ' << curve.ys()[i] << '\n';
  OCPS_CHECK(os.good(), "write failed for " << path);
}

FootprintFile load_footprint_file(const std::string& path) {
  std::ifstream is(path);
  OCPS_CHECK(is.good(), "cannot open " << path << " for reading");
  is.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  std::string magic;
  int version = 0;
  is >> magic >> version;
  OCPS_CHECK(magic == "ocps-footprint" && version == 1,
             "bad footprint file header in " << path);
  FootprintFile out;
  std::string key;
  std::size_t knots = 0;
  while (is >> key) {
    if (key == "name") {
      is >> out.name;
    } else if (key == "access_rate") {
      is >> out.access_rate;
    } else if (key == "trace_length") {
      is >> out.trace_length;
    } else if (key == "distinct") {
      is >> out.distinct;
    } else if (key == "knots") {
      is >> knots;
      break;
    } else {
      OCPS_CHECK(false, "unknown footprint file key '" << key << "'");
    }
  }
  OCPS_CHECK(knots >= 1, "footprint file has no knots: " << path);
  // Each knot occupies at least 4 bytes on disk ("x y\n"); a knot count
  // implying more data than the file holds is a corrupt header, and
  // resizing to it could allocate gigabytes.
  OCPS_CHECK(knots <= file_size / 4,
             "footprint header in " << path << " claims " << knots
                                    << " knots but the file is only "
                                    << file_size << " bytes");
  std::vector<double> xs(knots), ys(knots);
  for (std::size_t i = 0; i < knots; ++i) {
    is >> xs[i] >> ys[i];
    OCPS_CHECK(is.good() || (i + 1 == knots && is.eof()),
               "truncated or unparsable knot " << i << " in " << path);
    OCPS_CHECK(std::isfinite(xs[i]) && std::isfinite(ys[i]),
               "non-finite coordinate at knot " << i << " in " << path);
    OCPS_CHECK(xs[i] >= 0.0 && ys[i] >= 0.0,
               "negative coordinate at knot " << i << " in " << path);
    OCPS_CHECK(i == 0 || xs[i] > xs[i - 1],
               "window coordinates not increasing at knot " << i << " in "
                                                            << path);
    OCPS_CHECK(i == 0 || ys[i] >= ys[i - 1],
               "footprint not non-decreasing at knot " << i << " in "
                                                       << path);
  }
  out.footprint = PiecewiseLinear(std::move(xs), std::move(ys));
  OCPS_OBS_COUNT("io.footprint.bytes_read", file_size);
  OCPS_OBS_COUNT("io.footprint.knots_parsed", knots);
  OCPS_OBS_COUNT("io.footprint.files_loaded", 1);
  return out;
}

FootprintFile make_footprint_file(const std::string& name, double access_rate,
                                  const FootprintCurve& fp,
                                  std::size_t max_knots) {
  FootprintFile out;
  out.name = name;
  out.access_rate = access_rate;
  out.trace_length = fp.trace_length;
  out.distinct = fp.distinct;
  out.footprint = fp.to_curve(max_knots);
  return out;
}

}  // namespace ocps
