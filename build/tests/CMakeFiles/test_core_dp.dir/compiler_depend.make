# Empty compiler generated dependencies file for test_core_dp.
# This may be replaced when dependencies are built.
