#include "core/dp_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "combinatorics/enumerate.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Resolves DpOptions bounds into scratch.lo / scratch.hi.
void resolve_bounds(std::size_t programs, std::size_t capacity,
                    const DpOptions& options, DpScratch& scratch) {
  scratch.lo.assign(programs, 0);
  scratch.hi.assign(programs, capacity);
  if (!options.min_alloc.empty()) {
    OCPS_CHECK(options.min_alloc.size() == programs,
               "min_alloc size mismatch");
    scratch.lo.assign(options.min_alloc.begin(), options.min_alloc.end());
  }
  if (!options.max_alloc.empty()) {
    OCPS_CHECK(options.max_alloc.size() == programs,
               "max_alloc size mismatch");
    scratch.hi.assign(options.max_alloc.begin(), options.max_alloc.end());
  }
  // Infeasible bounds (lo > hi, or Σlo > capacity) are reported by the
  // optimizers via feasible == false rather than rejected here.
  for (std::size_t i = 0; i < programs; ++i)
    scratch.hi[i] = std::min(scratch.hi[i], capacity);
}

// Emits the DP's span and metrics on every exit path: solve latency
// histogram, cell-evaluation and solve counters, and the table size the
// solve uses. Inert (one branch) when observability is off.
struct DpObsRecorder {
  obs::ScopedSpan span{"dp.optimize", "core"};
  std::uint64_t cells = 0;
  std::uint64_t table_bytes = 0;

  ~DpObsRecorder() {
    if (!span.active()) return;
    span.set_arg("cells", cells);
    OCPS_OBS_COUNT("dp.solves", 1);
    OCPS_OBS_COUNT("dp.cells", cells);
    OCPS_OBS_HIST("dp.solve_ns", span.elapsed_ns());
    OCPS_OBS_GAUGE("dp.table_bytes", table_bytes);
  }
};

void validate_costs(CostMatrixView cost, std::size_t capacity) {
  const std::size_t p = cost.rows();
  OCPS_CHECK(p >= 1, "need at least one program");
  OCPS_CHECK(cost.cols() >= capacity + 1,
             "cost curves shorter than capacity+1");
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = cost.row(i);
    // NaN/inf in a cost curve would silently corrupt the min-reduction;
    // fail loudly instead.
    for (std::size_t c = 0; c <= capacity; ++c)
      OCPS_CHECK(std::isfinite(row[c]),
                 "non-finite cost at program " << i << ", c=" << c);
  }
}

}  // namespace

void DpScratch::reserve(std::size_t programs, std::size_t capacity) {
  const std::size_t cols = capacity + 1;
  bool grew = best.capacity() < cols || next.capacity() < cols ||
              choice.capacity() < programs * cols ||
              row_ptrs.capacity() < programs;
  if (grew) {
    ++grow_events;
    OCPS_OBS_COUNT("dp.scratch_grow", 1);
  }
  best.resize(cols);
  next.resize(cols);
  choice.resize(programs * cols);
  if (row_ptrs.capacity() < programs) row_ptrs.reserve(programs);
}

namespace {

// Records which forward-layer kernel this solve dispatched to. The
// counter pair (dp.kernel.avx2 / dp.kernel.scalar) counts solves, not
// layers, so `ocps stats` and Prometheus show which path production is
// actually on without per-layer overhead.
void count_kernel_solve() {
  if (dp_detail::active_kernel() == dp_detail::KernelKind::kAvx2)
    OCPS_OBS_COUNT("dp.kernel.avx2", 1);
  else
    OCPS_OBS_COUNT("dp.kernel.scalar", 1);
}

}  // namespace

DpResult optimize_partition(CostMatrixView cost, std::size_t capacity,
                            const DpOptions& options, DpScratch& scratch) {
  const std::size_t p = cost.rows();
  DpObsRecorder obs_rec;
  count_kernel_solve();
  validate_costs(cost, capacity);
  resolve_bounds(p, capacity, options, scratch);
  scratch.reserve(p, capacity);
  obs_rec.table_bytes =
      (capacity + 1) * (p * sizeof(std::uint32_t) + 2 * sizeof(double));

  // best[k] = optimal objective over the first i programs using exactly k
  // units; choice row i holds the units given to program i in that
  // optimum. The final layer only ever feeds the backtrack at
  // k = capacity, so it is computed for that single state.
  std::fill(scratch.best.begin(), scratch.best.begin() + capacity + 1,
            kInf);
  scratch.best[0] = 0.0;

  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t lo = scratch.lo[i];
    const std::size_t hi = scratch.hi[i];
    if (lo > capacity || lo > hi) {
      return DpResult{};  // infeasible bounds
    }
    std::uint32_t* choice_row = scratch.choice.data() + i * (capacity + 1);
    const bool final_layer = (i + 1 == p);
    const std::size_t k_begin = final_layer ? capacity : lo;
    if (!final_layer)
      std::fill(scratch.next.begin(),
                scratch.next.begin() + capacity + 1, kInf);
    obs_rec.cells += dp_detail::forward_layer(
        options.objective, cost.row(i), lo, hi, k_begin, capacity,
        /*prev_is_base=*/i == 0, scratch.best.data(), scratch.next.data(),
        choice_row);
    if (final_layer && i == 0) {
      // Single-program solve: the base fast path only writes [lo, hi];
      // state `capacity` may be outside it.
      if (capacity > hi) scratch.next[capacity] = kInf;
    }
    scratch.best.swap(scratch.next);
  }

  if (scratch.best[capacity] == kInf) return DpResult{};

  DpResult result;
  result.feasible = true;
  result.objective_value = scratch.best[capacity];
  result.alloc.assign(p, 0);
  std::size_t k = capacity;
  for (std::size_t i = p; i-- > 0;) {
    std::size_t c = scratch.choice[i * (capacity + 1) + k];
    result.alloc[i] = c;
    OCPS_CHECK(c <= k, "backtrack inconsistency");
    k -= c;
  }
  OCPS_CHECK(k == 0, "allocation does not sum to capacity");
  return result;
}

DpResult optimize_partition(CostMatrixView cost, std::size_t capacity,
                            const DpOptions& options) {
  DpScratch scratch;
  return optimize_partition(cost, capacity, options, scratch);
}

Result<DpResult> try_optimize_partition(CostMatrixView cost,
                                        std::size_t capacity,
                                        const DpOptions& options) {
  // Validate up front with error values; anything optimize_partition would
  // reject via OCPS_CHECK must be caught here first so the online path
  // never unwinds through the DP.
  const std::size_t p = cost.rows();
  auto reject = [](ErrorCode code, std::string message) {
    OCPS_OBS_COUNT("dp.errors", 1);
    return Err(code, std::move(message));
  };
  if (p == 0)
    return reject(ErrorCode::kInvalidArgument, "no cost curves given");
  if (cost.cols() < capacity + 1)
    return reject(ErrorCode::kInvalidArgument,
                  "cost curves shorter than capacity+1");
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = cost.row(i);
    for (std::size_t c = 0; c <= capacity; ++c)
      if (!std::isfinite(row[c]))
        return reject(ErrorCode::kCorruptData,
                      "non-finite cost at program " + std::to_string(i) +
                          ", c=" + std::to_string(c));
  }
  if (!options.min_alloc.empty() && options.min_alloc.size() != p)
    return reject(ErrorCode::kInvalidArgument, "min_alloc size mismatch");
  if (!options.max_alloc.empty() && options.max_alloc.size() != p)
    return reject(ErrorCode::kInvalidArgument, "max_alloc size mismatch");

  DpResult result;
  try {
    result = optimize_partition(cost, capacity, options);
  } catch (const CheckError& e) {
    OCPS_OBS_COUNT("dp.errors", 1);
    return Err(ErrorCode::kInternal, e.what());
  }
  if (!result.feasible) {
    OCPS_OBS_COUNT("dp.errors", 1);
    return Err(ErrorCode::kInfeasible,
               "allocation bounds admit no partition of capacity " +
                   std::to_string(capacity));
  }
  return Ok(std::move(result));
}

DpResult optimize_partition_exhaustive(CostMatrixView cost,
                                       std::size_t capacity,
                                       const DpOptions& options) {
  const std::size_t p = cost.rows();
  OCPS_CHECK(p >= 1, "need at least one program");
  DpScratch scratch;
  resolve_bounds(p, capacity, options, scratch);

  DpResult best;
  best.objective_value = kInf;
  for_each_composition(
      static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(capacity), 0,
      [&](const std::vector<std::uint32_t>& alloc) {
        double value = (options.objective == DpObjective::kSumCost) ? 0.0
                                                                    : -kInf;
        bool ok = true;
        for (std::size_t i = 0; i < p; ++i) {
          std::size_t c = alloc[i];
          if (c < scratch.lo[i] || c > scratch.hi[i]) {
            ok = false;
            break;
          }
          value = (options.objective == DpObjective::kSumCost)
                      ? value + cost(i, c)
                      : std::max(value, cost(i, c));
        }
        if (ok && value < best.objective_value) {
          best.feasible = true;
          best.objective_value = value;
          best.alloc.assign(alloc.begin(), alloc.end());
        }
        return true;
      });
  if (!best.feasible) best.objective_value = 0.0;
  return best;
}

}  // namespace ocps
