// Suite profiling: traces → footprints → program models.
//
// Mirrors the paper's pipeline (§VII-A): each program is profiled once
// (full-trace footprint, no sampling), producing one footprint file /
// ProgramModel per program; all downstream evaluation reuses those models.
// An optional on-disk cache of the ASCII footprint files makes repeated
// bench runs cheap, exactly like the paper's 16 persisted footprint files.
#pragma once

#include <string>
#include <vector>

#include "core/program_model.hpp"
#include "workloads/spec_like.hpp"

namespace ocps {

/// Suite construction knobs. Env overrides (used by bench binaries):
/// OCPS_TRACE_LENGTH, OCPS_CAPACITY, OCPS_SUITE_CACHE.
struct SuiteOptions {
  std::size_t trace_length = 400'000;  ///< accesses per program
  std::size_t capacity = 1024;         ///< cache size in allocation units
  std::size_t footprint_knots = 4096;  ///< stored footprint resolution
  /// When non-empty, footprint files are cached here across runs.
  std::string cache_dir;
};

/// Reads SuiteOptions from the OCPS_* environment variables.
SuiteOptions suite_options_from_env();

/// Profiled suite: one model per workload, same order as the specs.
struct Suite {
  SuiteOptions options;
  std::vector<WorkloadSpec> specs;
  std::vector<ProgramModel> models;

  const ProgramModel& by_name(const std::string& name) const;
  std::size_t index_of(const std::string& name) const;
};

/// Builds (or loads from cache) models for the given workload specs.
Suite build_suite(const std::vector<WorkloadSpec>& specs,
                  const SuiteOptions& options);

/// Convenience: the full 16-program SPEC-like suite.
Suite build_spec2006_suite(const SuiteOptions& options);

/// Regenerates the trace of one workload at the suite's length (for
/// simulator-based validation, which needs the raw accesses).
Trace suite_trace(const Suite& suite, std::size_t program_index);

}  // namespace ocps
