#include "trace/interleave.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps {

namespace {

// Gives each program a disjoint block-id region: program i's blocks are
// offset into [i * kRegion, ...). Region width must exceed any program's
// distinct block count; 2^40 is beyond anything we generate.
constexpr Block kRegion = Block{1} << 40;

void validate(const std::vector<Trace>& traces,
              const std::vector<double>& rates) {
  OCPS_CHECK(!traces.empty(), "need at least one trace");
  OCPS_CHECK(traces.size() == rates.size(), "rates must parallel traces");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    OCPS_CHECK(!traces[i].empty(), "trace " << i << " is empty");
    OCPS_CHECK(rates[i] > 0.0, "rate " << i << " must be positive");
  }
}

}  // namespace

InterleavedTrace interleave_proportional(const std::vector<Trace>& traces,
                                         const std::vector<double>& rates,
                                         std::size_t total_length) {
  validate(traces, rates);
  const std::size_t p = traces.size();
  double rate_sum = 0.0;
  for (double r : rates) rate_sum += r;

  InterleavedTrace out;
  out.blocks.reserve(total_length);
  out.owners.reserve(total_length);

  // Largest-remainder scheduling: at each step pick the program whose
  // emitted share lags its target share the most. credit[i] accumulates
  // r_i/Σr per step and is decremented by 1 when i is chosen.
  std::vector<double> credit(p, 0.0);
  std::vector<std::size_t> cursor(p, 0);
  for (std::size_t k = 0; k < total_length; ++k) {
    std::size_t best = 0;
    for (std::size_t i = 0; i < p; ++i) {
      credit[i] += rates[i] / rate_sum;
      if (credit[i] > credit[best]) best = i;
    }
    credit[best] -= 1.0;
    const Trace& t = traces[best];
    out.blocks.push_back(t.accesses[cursor[best]] +
                         static_cast<Block>(best) * kRegion);
    out.owners.push_back(static_cast<std::uint32_t>(best));
    cursor[best] = (cursor[best] + 1) % t.length();
  }
  return out;
}

InterleavedTrace interleave_stochastic(const std::vector<Trace>& traces,
                                       const std::vector<double>& rates,
                                       std::size_t total_length,
                                       std::uint64_t seed) {
  validate(traces, rates);
  const std::size_t p = traces.size();
  double rate_sum = 0.0;
  for (double r : rates) rate_sum += r;
  std::vector<double> cdf(p);
  double acc = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    acc += rates[i] / rate_sum;
    cdf[i] = acc;
  }

  Rng rng(seed);
  InterleavedTrace out;
  out.blocks.reserve(total_length);
  out.owners.reserve(total_length);
  std::vector<std::size_t> cursor(p, 0);
  for (std::size_t k = 0; k < total_length; ++k) {
    double u = rng.uniform();
    std::size_t i = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    i = std::min(i, p - 1);
    const Trace& t = traces[i];
    out.blocks.push_back(t.accesses[cursor[i]] +
                         static_cast<Block>(i) * kRegion);
    out.owners.push_back(static_cast<std::uint32_t>(i));
    cursor[i] = (cursor[i] + 1) % t.length();
  }
  return out;
}

}  // namespace ocps
