// Example: allocating a real LLC with way quotas (Intel CAT style).
//
// A 16-way, 2MB-slice LLC must be split among four programs. We profile
// them, run the DP directly at way granularity (optimize at the
// deployment grain — rounding a unit-grain answer can re-trigger a
// working-set cliff), and validate the chosen quotas on the
// way-partitioned set-associative simulator against equal quotas and
// free-for-all sharing.
#include <iostream>

#include "ocps.hpp"

using namespace ocps;

int main() {
  const std::size_t ways = 16;
  const std::size_t num_sets = 512;  // a realistic LLC slice
  const std::size_t capacity = ways * num_sets;  // 8192 blocks
  const std::size_t blocks_per_way = capacity / ways;
  const std::size_t n = 400000;

  struct App {
    const char* name;
    double rate;
    Trace trace;
  };
  std::vector<App> apps;
  apps.push_back({"database", 2.0, make_zipf(n, 6000, 0.9, 41)});
  apps.push_back({"analytics-scan", 1.5,
                  make_scan_mix(n, 400, 0.8, {{2600, 0.08}}, 42)});
  apps.push_back({"web", 1.0, make_hot_cold(n, 300, 3500, 0.85, 43)});
  // A polluting stream: touches fresh data continuously (the paper's
  // motivation for fences — under free-for-all it evicts everyone else).
  apps.push_back({"backup-stream", 1.5, make_stream(n)});

  // Profile and build way-granularity cost curves.
  std::vector<ProgramModel> models;
  CostMatrix way_cost(apps.size(), ways);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    models.push_back(make_program_model(
        apps[i].name, apps[i].rate, compute_footprint(apps[i].trace),
        capacity));
    double* row = way_cost.row(i);
    for (std::size_t w = 0; w <= ways; ++w)
      row[w] = apps[i].rate * models[i].mrc.ratio(w * blocks_per_way);
  }
  DpResult dp = optimize_partition(way_cost.view(), ways);

  std::cout << "=== CAT way allocation (16 ways, 64 sets) ===\n\n";
  TextTable plan({"app", "ways", "blocks", "predicted miss ratio"});
  for (std::size_t i = 0; i < apps.size(); ++i)
    plan.add_row({apps[i].name, std::to_string(dp.alloc[i]),
                  std::to_string(dp.alloc[i] * blocks_per_way),
                  TextTable::num(
                      models[i].mrc.ratio(dp.alloc[i] * blocks_per_way),
                      4)});
  plan.print(std::cout);

  // Validate on the set-associative simulator.
  std::vector<Trace> traces;
  std::vector<double> rates;
  for (auto& a : apps) {
    traces.push_back(a.trace);
    rates.push_back(a.rate);
  }
  InterleavedTrace mix = interleave_proportional(traces, rates, n * 4);
  const std::size_t warmup = n;

  WayPartitionResult optimal = simulate_way_partitioned(
      mix, num_sets, ways, dp.alloc, warmup);
  WayPartitionResult equal = simulate_way_partitioned(
      mix, num_sets, ways, {4, 4, 4, 4}, warmup);
  CoRunResult shared = simulate_shared(mix, capacity, {warmup, 0});

  std::cout << "\nsimulated group miss ratio:\n";
  TextTable r({"scheme", "group mr"});
  r.add_row({"free-for-all sharing (FA-LRU)",
             TextTable::num(shared.group_miss_ratio(), 4)});
  r.add_row({"equal quotas {4,4,4,4}", TextTable::num(equal.group_mr, 4)});
  std::string quota_str;
  for (std::size_t i = 0; i < apps.size(); ++i)
    quota_str += (i ? "," : "") + std::to_string(dp.alloc[i]);
  r.add_row({"DP quotas {" + quota_str + "}",
             TextTable::num(optimal.group_mr, 4)});
  r.print(std::cout);

  std::cout << "\nThe stream is fenced off entirely (zero ways — its MRC is flat, so caching it is pure waste); the "
               "database keeps most of the cache. Free-for-all sharing "
               "lets the stream evict everyone — the Robert Frost fence, "
               "deployed at hardware granularity.\n";
  return 0;
}
