#include "trace/trace_io.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {
constexpr char kMagic[8] = {'O', 'C', 'P', 'S', 'T', 'R', 'C', '1'};
}

void save_trace_binary(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OCPS_CHECK(os.good(), "cannot open " << path << " for writing");
  os.write(kMagic, sizeof(kMagic));
  std::uint64_t n = trace.accesses.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(trace.accesses.data()),
           static_cast<std::streamsize>(n * sizeof(Block)));
  OCPS_CHECK(os.good(), "write failed for " << path);
}

Trace load_trace_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  OCPS_CHECK(is.good(), "cannot open " << path << " for reading");
  is.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  char magic[8];
  is.read(magic, sizeof(magic));
  OCPS_CHECK(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             "bad trace file header in " << path);
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  OCPS_CHECK(is.good(), "truncated trace file " << path);
  // Validate the header count against the bytes actually present before
  // resizing: a corrupt header must not trigger a multi-GB allocation.
  const std::uint64_t header = sizeof(kMagic) + sizeof(n);
  const std::uint64_t payload = file_size - header;
  OCPS_CHECK(n <= payload / sizeof(Block),
             "trace header in " << path << " claims " << n
                                << " accesses but only " << payload
                                << " payload bytes are present");
  Trace t;
  t.accesses.resize(n);
  is.read(reinterpret_cast<char*>(t.accesses.data()),
          static_cast<std::streamsize>(n * sizeof(Block)));
  OCPS_CHECK(is.good(), "truncated trace payload in " << path);
  OCPS_OBS_COUNT("io.trace.bytes_read", header + n * sizeof(Block));
  OCPS_OBS_COUNT("io.trace.records_parsed", n);
  OCPS_OBS_COUNT("io.trace.files_loaded", 1);
  return t;
}

namespace {

Trace parse_address_stream(std::istream& is, std::uint64_t block_bytes) {
  OCPS_CHECK(block_bytes >= 1, "block size must be positive");
  Trace t;
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t bytes = 0;
  while (std::getline(is, line)) {
    ++lineno;
    bytes += line.size() + 1;
    // Strip comments and whitespace-only lines.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first, second;
    if (!(ls >> first)) continue;
    // Optional access-type prefix (R/W/I, case-insensitive).
    std::string addr_token = first;
    if (first.size() == 1 &&
        (first == "R" || first == "W" || first == "I" || first == "r" ||
         first == "w" || first == "i")) {
      OCPS_CHECK(static_cast<bool>(ls >> second),
                 "missing address after access type on line " << lineno);
      addr_token = second;
    }
    char* end = nullptr;
    std::uint64_t addr = std::strtoull(addr_token.c_str(), &end, 0);
    OCPS_CHECK(end && *end == '\0' && end != addr_token.c_str(),
               "bad address '" << addr_token << "' on line " << lineno);
    t.accesses.push_back(addr / block_bytes);
  }
  OCPS_OBS_COUNT("io.trace.bytes_read", bytes);
  OCPS_OBS_COUNT("io.trace.records_parsed", t.accesses.size());
  return t;
}

}  // namespace

Trace parse_address_trace(const std::string& text,
                          std::uint64_t block_bytes) {
  std::istringstream is(text);
  return parse_address_stream(is, block_bytes);
}

Trace load_address_trace(const std::string& path,
                         std::uint64_t block_bytes) {
  std::ifstream is(path);
  OCPS_CHECK(is.good(), "cannot open " << path << " for reading");
  return parse_address_stream(is, block_bytes);
}

Trace parse_token_trace(const std::string& text) {
  std::istringstream is(text);
  std::unordered_map<std::string, Block> ids;
  Trace t;
  std::string token;
  while (is >> token) {
    auto [it, inserted] = ids.try_emplace(token, static_cast<Block>(ids.size()));
    (void)inserted;
    t.accesses.push_back(it->second);
  }
  return t;
}

}  // namespace ocps
