// Fig. 5: the miss ratio of individual programs running with different
// peer groups under Natural, Equal, Natural baseline, Equal baseline and
// Optimal. For every focal program we aggregate its miss ratio across all
// C(15,3) = 455 peer groups, report the gainer/loser split vs Equal (the
// paper's sharing-incentive analysis), and dump the full per-group series
// to CSV for re-plotting.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Evaluation eval = load_evaluation();
  const auto& models = eval.suite.models;

  struct PerProgram {
    std::vector<double> natural, equal, nat_base, eq_base, optimal;
  };
  std::vector<PerProgram> agg(models.size());

  for (const auto& g : eval.sweep) {
    for (std::size_t k = 0; k < g.members.size(); ++k) {
      std::size_t p = g.members[k];
      agg[p].natural.push_back(g.of(Method::kNatural).per_program_mr[k]);
      agg[p].equal.push_back(g.of(Method::kEqual).per_program_mr[k]);
      agg[p].nat_base.push_back(
          g.of(Method::kNaturalBaseline).per_program_mr[k]);
      agg[p].eq_base.push_back(
          g.of(Method::kEqualBaseline).per_program_mr[k]);
      agg[p].optimal.push_back(g.of(Method::kOptimal).per_program_mr[k]);
    }
  }

  // Sort programs by their Equal miss ratio, the paper's page order.
  std::vector<std::size_t> order(models.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mean_of(agg[a].equal) > mean_of(agg[b].equal);
  });

  std::cout << "=== Fig. 5: per-program miss ratios across peer groups "
               "===\n";
  std::cout << "(programs sorted by Equal miss ratio, descending — the "
               "paper's layout)\n\n";
  TextTable t({"program", "Equal", "Natural(min..mean..max)",
               "NatBase(mean)", "EqBase(mean)", "Optimal(min..mean..max)",
               "gain vs Equal", "lose vs Equal"});
  for (std::size_t idx : order) {
    const PerProgram& a = agg[idx];
    Summary nat = summarize(a.natural);
    Summary opt = summarize(a.optimal);
    std::size_t gain = 0, lose = 0;
    for (std::size_t k = 0; k < a.natural.size(); ++k) {
      if (a.natural[k] < a.equal[k] - 1e-12) ++gain;
      if (a.natural[k] > a.equal[k] + 1e-12) ++lose;
    }
    double n = static_cast<double>(a.natural.size());
    t.add_row(
        {models[idx].name, TextTable::num(mean_of(a.equal), 5),
         TextTable::num(nat.min, 5) + ".." + TextTable::num(nat.mean, 5) +
             ".." + TextTable::num(nat.max, 5),
         TextTable::num(mean_of(a.nat_base), 5),
         TextTable::num(mean_of(a.eq_base), 5),
         TextTable::num(opt.min, 5) + ".." + TextTable::num(opt.mean, 5) +
             ".." + TextTable::num(opt.max, 5),
         TextTable::pct(gain / n, 1), TextTable::pct(lose / n, 1)});
  }
  emit_table(t, "fig5_summary");

  // Gainer/loser division line (paper: roughly 1.35% Equal miss ratio).
  std::cout << "\nGainer/loser split vs Equal (paper: high-miss-ratio "
               "programs tend to gain from sharing; division line near "
               "1.35%, with exceptions like perlbench, hmmer, tonto):\n";
  for (std::size_t idx : order) {
    const PerProgram& a = agg[idx];
    std::size_t gain = 0;
    for (std::size_t k = 0; k < a.natural.size(); ++k)
      if (a.natural[k] < a.equal[k] - 1e-12) ++gain;
    double frac = static_cast<double>(gain) /
                  static_cast<double>(a.natural.size());
    std::cout << "  " << models[idx].name << ": equal mr "
              << TextTable::num(mean_of(a.equal), 5) << ", gains in "
              << TextTable::pct(frac, 1) << " of groups"
              << (frac > 0.5 ? "  [gainer]" : "  [loser]") << "\n";
  }

  // Full series per focal program -> CSV (one row per (program, group)).
  TextTable full({"program", "peer_group_rank", "Natural", "Equal",
                  "NaturalBase", "EqualBase", "Optimal"});
  for (std::size_t idx = 0; idx < models.size(); ++idx) {
    const PerProgram& a = agg[idx];
    // Sort this program's groups by Natural mr (plot-style ordering).
    std::vector<std::size_t> ord(a.natural.size());
    for (std::size_t i = 0; i < ord.size(); ++i) ord[i] = i;
    std::sort(ord.begin(), ord.end(), [&](std::size_t x, std::size_t y) {
      return a.natural[x] < a.natural[y];
    });
    for (std::size_t r = 0; r < ord.size(); ++r) {
      std::size_t k = ord[r];
      full.add_row({models[idx].name, std::to_string(r),
                    TextTable::num(a.natural[k], 6),
                    TextTable::num(a.equal[k], 6),
                    TextTable::num(a.nat_base[k], 6),
                    TextTable::num(a.eq_base[k], 6),
                    TextTable::num(a.optimal[k], 6)});
    }
  }
  emit_csv_only(full, "fig5_full");

  std::cout << "\nInvariants to observe (paper Fig. 5): baseline curves "
               "never exceed their baseline; Optimal both improves and "
               "degrades individuals depending on peers; Equal is constant "
               "per program.\n";
  return 0;
}
