#ifndef OCPS_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/obs.hpp"

namespace ocps::obs {

namespace {

std::uint64_t steady_now_raw() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t trace_epoch() {
  static const std::uint64_t epoch = steady_now_raw();
  return epoch;
}

// Per-thread event ring. push() is called only by the owning thread; a
// tiny spinlock makes concurrent export (another thread scraping) safe
// without ever contending on the hot path — the lock is uncontended
// except during an export.
// A full ring overwrites its oldest event; obs.spans_dropped counts every
// such overwrite so a truncated trace export is detectable from metrics.
Counter& spans_dropped_counter() {
  static Counter& c = counter("obs.spans_dropped");
  return c;
}

struct SpanRing {
  std::vector<TraceEvent> events;  // capacity kRingCapacity, ring storage
  std::size_t next = 0;            // ring write position
  std::uint64_t total = 0;         // events ever pushed
  std::uint32_t tid = 0;
  std::atomic_flag lock = ATOMIC_FLAG_INIT;

  void push(TraceEvent e) {
    bool overwrote = false;
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
    e.tid = tid;
    if (events.size() < kRingCapacity) {
      events.push_back(e);
    } else {
      events[next] = e;
      overwrote = true;
    }
    next = (next + 1) % kRingCapacity;
    ++total;
    lock.clear(std::memory_order_release);
    if (overwrote) spans_dropped_counter().add(1);
  }

  void snapshot(std::vector<TraceEvent>* out) {
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
    // Emit in logical (oldest-to-newest) order, not rotated storage
    // order, so the stable sort in trace_events() keeps push order for
    // events whose coarse-clock timestamps tie.
    if (events.size() < kRingCapacity) {
      out->insert(out->end(), events.begin(), events.end());
    } else {
      out->insert(out->end(), events.begin() + static_cast<std::ptrdiff_t>(next),
                  events.end());
      out->insert(out->end(), events.begin(),
                  events.begin() + static_cast<std::ptrdiff_t>(next));
    }
    lock.clear(std::memory_order_release);
  }

  void clear() {
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
    events.clear();
    next = 0;
    lock.clear(std::memory_order_release);
  }
};

struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanRing>> rings;
  std::uint32_t next_tid = 1;
};

RingDirectory& directory() {
  static RingDirectory* d = new RingDirectory();  // never destroyed
  return *d;
}

SpanRing& this_thread_ring() {
  thread_local std::shared_ptr<SpanRing> ring = [] {
    auto r = std::make_shared<SpanRing>();
    r->events.reserve(kRingCapacity);
    spans_dropped_counter();  // register eagerly: scrapes always show it
    RingDirectory& d = directory();
    std::lock_guard<std::mutex> lock(d.mu);
    r->tid = d.next_tid++;
    d.rings.push_back(r);  // directory keeps rings alive past thread exit
    return r;
  }();
  return *ring;
}

void escape(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

}  // namespace

std::uint64_t now_ns() { return steady_now_raw() - trace_epoch(); }

ScopedSpan::ScopedSpan(const char* name, const char* cat) noexcept {
  if (!enabled()) return;
  name_ = name;
  cat_ = cat;
  start_ns_ = now_ns();
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.ts_ns = start_ns_;
  e.dur_ns = now_ns() - start_ns_;
  e.arg_name = arg_name_;
  e.arg = arg_;
  e.trace_id = trace_id_;
  e.instant = false;
  this_thread_ring().push(e);
}

void ScopedSpan::set_arg(const char* key, std::uint64_t value) noexcept {
  arg_name_ = key;
  arg_ = value;
}

void ScopedSpan::set_trace_id(std::uint64_t id) noexcept { trace_id_ = id; }

std::uint64_t ScopedSpan::elapsed_ns() const noexcept {
  return active_ ? now_ns() - start_ns_ : 0;
}

void instant_event(const char* name, const char* cat, const char* arg_name,
                   std::uint64_t arg, std::uint64_t trace_id) noexcept {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  e.dur_ns = 0;
  e.arg_name = arg_name;
  e.arg = arg;
  e.trace_id = trace_id;
  e.instant = true;
  this_thread_ring().push(e);
}

std::vector<TraceEvent> trace_events() {
  std::vector<std::shared_ptr<SpanRing>> rings;
  {
    RingDirectory& d = directory();
    std::lock_guard<std::mutex> lock(d.mu);
    rings = d.rings;
  }
  std::vector<TraceEvent> out;
  for (const auto& r : rings) r->snapshot(&out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::vector<TraceEvent> trace_events_for(std::uint64_t trace_id) {
  std::vector<TraceEvent> out;
  if (trace_id == 0) return out;
  for (const TraceEvent& e : trace_events())
    if (e.trace_id == trace_id) out.push_back(e);
  return out;
}

void clear_trace_events() {
  std::vector<std::shared_ptr<SpanRing>> rings;
  {
    RingDirectory& d = directory();
    std::lock_guard<std::mutex> lock(d.mu);
    rings = d.rings;
  }
  for (const auto& r : rings) r->clear();
}

void write_chrome_trace(std::ostream& os) {
  std::vector<TraceEvent> events = trace_events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    escape(os, e.name);
    os << "\",\"cat\":\"";
    escape(os, e.cat ? e.cat : "ocps");
    os << "\",\"ph\":\"" << (e.instant ? 'i' : 'X') << "\",\"pid\":1"
       << ",\"tid\":" << e.tid << ",\"ts\":"
       << static_cast<double>(e.ts_ns) / 1000.0;
    if (e.instant) {
      os << ",\"s\":\"t\"";
    } else {
      os << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    }
    if (e.trace_id != 0) {
      // Legacy flow-event linkage: viewers draw one connected tree for
      // all events sharing a bind_id, across threads.
      os << ",\"bind_id\":" << e.trace_id
         << ",\"flow_in\":true,\"flow_out\":true";
    }
    if (e.arg_name || e.trace_id != 0) {
      os << ",\"args\":{";
      bool afirst = true;
      if (e.arg_name) {
        os << '"';
        escape(os, e.arg_name);
        os << "\":" << e.arg;
        afirst = false;
      }
      if (e.trace_id != 0) {
        if (!afirst) os << ',';
        os << "\"trace_id\":" << e.trace_id;
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}";
}

void write_text_timeline(std::ostream& os) {
  for (const TraceEvent& e : trace_events()) {
    os << e.ts_ns << "ns";
    if (e.instant) {
      os << " !";
    } else {
      os << " +" << e.dur_ns << "ns";
    }
    os << " tid=" << e.tid << " " << (e.cat ? e.cat : "ocps") << "/"
       << e.name;
    if (e.trace_id != 0) os << " trace_id=" << e.trace_id;
    if (e.arg_name) os << " " << e.arg_name << "=" << e.arg;
    os << "\n";
  }
}

}  // namespace ocps::obs

#else  // OCPS_OBS_DISABLED

#include <ostream>

#include "obs/obs.hpp"

namespace ocps::obs {

void write_chrome_trace(std::ostream& os) { os << "{\"traceEvents\":[]}"; }
void write_text_timeline(std::ostream&) {}

}  // namespace ocps::obs

#endif  // OCPS_OBS_DISABLED
