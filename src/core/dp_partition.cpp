#include "core/dp_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "combinatorics/enumerate.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Bounds {
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
};

Bounds resolve_bounds(std::size_t programs, std::size_t capacity,
                      const DpOptions& options) {
  Bounds b;
  b.lo.assign(programs, 0);
  b.hi.assign(programs, capacity);
  if (!options.min_alloc.empty()) {
    OCPS_CHECK(options.min_alloc.size() == programs,
               "min_alloc size mismatch");
    b.lo = options.min_alloc;
  }
  if (!options.max_alloc.empty()) {
    OCPS_CHECK(options.max_alloc.size() == programs,
               "max_alloc size mismatch");
    b.hi = options.max_alloc;
  }
  // Infeasible bounds (lo > hi, or Σlo > capacity) are reported by the
  // optimizers via feasible == false rather than rejected here.
  for (std::size_t i = 0; i < programs; ++i)
    b.hi[i] = std::min(b.hi[i], capacity);
  return b;
}

double combine(DpObjective obj, double a, double b) {
  return obj == DpObjective::kSumCost ? a + b : std::max(a, b);
}

// Emits the DP's span and metrics on every exit path: solve latency
// histogram, cell-evaluation and solve counters, and the table size the
// solve allocated. Inert (one branch) when observability is off.
struct DpObsRecorder {
  obs::ScopedSpan span{"dp.optimize", "core"};
  std::uint64_t cells = 0;
  std::uint64_t table_bytes = 0;

  ~DpObsRecorder() {
    if (!span.active()) return;
    span.set_arg("cells", cells);
    OCPS_OBS_COUNT("dp.solves", 1);
    OCPS_OBS_COUNT("dp.cells", cells);
    OCPS_OBS_HIST("dp.solve_ns", span.elapsed_ns());
    OCPS_OBS_GAUGE("dp.table_bytes", table_bytes);
  }
};

}  // namespace

DpResult optimize_partition(const std::vector<std::vector<double>>& cost,
                            std::size_t capacity, const DpOptions& options) {
  const std::size_t p = cost.size();
  OCPS_CHECK(p >= 1, "need at least one program");
  DpObsRecorder obs_rec;
  for (std::size_t i = 0; i < p; ++i) {
    OCPS_CHECK(cost[i].size() >= capacity + 1,
               "cost curve " << i << " shorter than capacity+1");
    // NaN/inf in a cost curve would silently corrupt the min-reduction;
    // fail loudly instead.
    for (std::size_t c = 0; c <= capacity; ++c)
      OCPS_CHECK(std::isfinite(cost[i][c]),
                 "non-finite cost at program " << i << ", c=" << c);
  }
  Bounds bounds = resolve_bounds(p, capacity, options);

  // best[k] = optimal objective over the first i programs using exactly k
  // units; choice[i][k] = units given to program i in that optimum.
  std::vector<double> best(capacity + 1, kInf);
  std::vector<double> next(capacity + 1, kInf);
  // choice is (p × capacity+1); uint32 keeps it compact (4·P·C bytes).
  std::vector<std::vector<std::uint32_t>> choice(
      p, std::vector<std::uint32_t>(capacity + 1, 0));
  obs_rec.table_bytes =
      (capacity + 1) * (p * sizeof(std::uint32_t) + 2 * sizeof(double));

  // Base: zero programs consume zero units at zero cost (identity of both
  // objectives: 0 for sum; -inf would be the true identity for max but 0
  // works because costs are non-negative).
  best.assign(capacity + 1, kInf);
  best[0] = 0.0;

  for (std::size_t i = 0; i < p; ++i) {
    std::fill(next.begin(), next.end(), kInf);
    const std::size_t lo = bounds.lo[i];
    const std::size_t hi = bounds.hi[i];
    if (lo > capacity || lo > hi) {
      return DpResult{};  // infeasible bounds
    }
    for (std::size_t k = lo; k <= capacity; ++k) {
      const std::size_t c_max = std::min(hi, k);
      if (c_max >= lo) obs_rec.cells += c_max - lo + 1;
      double best_val = kInf;
      std::uint32_t best_c = 0;
      for (std::size_t c = lo; c <= c_max; ++c) {
        double prev = best[k - c];
        if (prev == kInf) continue;
        double val = combine(options.objective, prev, cost[i][c]);
        if (val < best_val) {
          best_val = val;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      next[k] = best_val;
      choice[i][k] = best_c;
    }
    best.swap(next);
  }

  if (best[capacity] == kInf) return DpResult{};

  DpResult result;
  result.feasible = true;
  result.objective_value = best[capacity];
  result.alloc.assign(p, 0);
  std::size_t k = capacity;
  for (std::size_t i = p; i-- > 0;) {
    std::size_t c = choice[i][k];
    result.alloc[i] = c;
    OCPS_CHECK(c <= k, "backtrack inconsistency");
    k -= c;
  }
  OCPS_CHECK(k == 0, "allocation does not sum to capacity");
  return result;
}

Result<DpResult> try_optimize_partition(
    const std::vector<std::vector<double>>& cost, std::size_t capacity,
    const DpOptions& options) {
  // Validate up front with error values; anything optimize_partition would
  // reject via OCPS_CHECK must be caught here first so the online path
  // never unwinds through the DP.
  const std::size_t p = cost.size();
  auto reject = [](ErrorCode code, std::string message) {
    OCPS_OBS_COUNT("dp.errors", 1);
    return Err(code, std::move(message));
  };
  if (p == 0)
    return reject(ErrorCode::kInvalidArgument, "no cost curves given");
  for (std::size_t i = 0; i < p; ++i) {
    if (cost[i].size() < capacity + 1)
      return reject(ErrorCode::kInvalidArgument,
                    "cost curve " + std::to_string(i) +
                        " shorter than capacity+1");
    for (std::size_t c = 0; c <= capacity; ++c)
      if (!std::isfinite(cost[i][c]))
        return reject(ErrorCode::kCorruptData,
                      "non-finite cost at program " + std::to_string(i) +
                          ", c=" + std::to_string(c));
  }
  if (!options.min_alloc.empty() && options.min_alloc.size() != p)
    return reject(ErrorCode::kInvalidArgument, "min_alloc size mismatch");
  if (!options.max_alloc.empty() && options.max_alloc.size() != p)
    return reject(ErrorCode::kInvalidArgument, "max_alloc size mismatch");

  DpResult result;
  try {
    result = optimize_partition(cost, capacity, options);
  } catch (const CheckError& e) {
    OCPS_OBS_COUNT("dp.errors", 1);
    return Err(ErrorCode::kInternal, e.what());
  }
  if (!result.feasible) {
    OCPS_OBS_COUNT("dp.errors", 1);
    return Err(ErrorCode::kInfeasible,
               "allocation bounds admit no partition of capacity " +
                   std::to_string(capacity));
  }
  return Ok(std::move(result));
}

DpResult optimize_partition_exhaustive(
    const std::vector<std::vector<double>>& cost, std::size_t capacity,
    const DpOptions& options) {
  const std::size_t p = cost.size();
  OCPS_CHECK(p >= 1, "need at least one program");
  Bounds bounds = resolve_bounds(p, capacity, options);

  DpResult best;
  best.objective_value = kInf;
  for_each_composition(
      static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(capacity), 0,
      [&](const std::vector<std::uint32_t>& alloc) {
        double value = (options.objective == DpObjective::kSumCost) ? 0.0
                                                                    : -kInf;
        bool ok = true;
        for (std::size_t i = 0; i < p; ++i) {
          std::size_t c = alloc[i];
          if (c < bounds.lo[i] || c > bounds.hi[i]) {
            ok = false;
            break;
          }
          value = (options.objective == DpObjective::kSumCost)
                      ? value + cost[i][c]
                      : std::max(value, cost[i][c]);
        }
        if (ok && value < best.objective_value) {
          best.feasible = true;
          best.objective_value = value;
          best.alloc.assign(alloc.begin(), alloc.end());
        }
        return true;
      });
  if (!best.feasible) best.objective_value = 0.0;
  return best;
}

std::vector<std::vector<double>> weighted_cost_curves(
    const std::vector<const MissRatioCurve*>& mrcs,
    const std::vector<double>& weights, std::size_t capacity) {
  OCPS_CHECK(mrcs.size() == weights.size(), "weights must parallel curves");
  std::vector<std::vector<double>> cost(mrcs.size());
  for (std::size_t i = 0; i < mrcs.size(); ++i) {
    OCPS_CHECK(mrcs[i] != nullptr, "null curve at " << i);
    OCPS_CHECK(weights[i] >= 0.0, "negative weight at " << i);
    cost[i].resize(capacity + 1);
    for (std::size_t c = 0; c <= capacity; ++c)
      cost[i][c] = weights[i] * mrcs[i]->ratio(c);
  }
  return cost;
}

}  // namespace ocps
