// Fairness / QoS objectives beyond total miss count (§V-B "it can optimize
// for any objective function", §VI).
//
// The DP accepts arbitrary per-program cost curves plus a sum or max
// combiner; these helpers build the common alternatives and score the
// fairness of a resulting allocation, powering the optimal-vs-fair
// trade-off ablation.
#pragma once

#include <vector>

#include "core/composition.hpp"
#include "core/dp_partition.hpp"

namespace ocps {

/// Minimizes the worst member miss ratio (egalitarian / QoS objective):
/// DP with the kMaxCost combiner over unweighted miss ratios.
DpResult optimize_minimax(const CoRunGroup& group, std::size_t capacity);

/// Minimizes Σ rate_i · mr_i(c_i) subject to mr_i(c_i) <= qos_ceiling_i for
/// every member (per-program QoS guarantees as allocation lower bounds).
/// Returns feasible == false when a ceiling is unattainable within C.
DpResult optimize_with_qos(const CoRunGroup& group, CostMatrixView cost,
                           std::size_t capacity,
                           const std::vector<double>& qos_ceiling);

/// Jain's fairness index of per-program speedups relative to the equal
/// partition: x_i = mr_i(equal_i) / mr_i(alloc_i) (>1 means better than
/// equal). Index 1 = perfectly fair, 1/P = maximally unfair.
double jain_fairness_vs_equal(const CoRunGroup& group,
                              const std::vector<double>& per_program_mr,
                              std::size_t capacity);

/// Number of members whose miss ratio exceeds the baseline's by more than
/// eps (the paper's "losers" under an optimization).
std::size_t count_losers(const std::vector<double>& per_program_mr,
                         const std::vector<double>& baseline_mr,
                         double eps = 1e-12);

}  // namespace ocps
