// Online repartitioning controller.
//
// The paper assumes "the data can be collected in real time" (§VIII
// Practicality) but evaluates offline. This module closes the loop as a
// runtime system would: each program is watched by a cheap sampled
// profiler (SHARDS); at every epoch boundary the controller estimates
// fresh miss-ratio curves from the *last* epoch's observations, runs the
// DP, and resizes the per-program LRU partitions in place. The first
// epoch runs under an equal partition (nothing is known yet).
//
// The bench (bench_online_controller) compares the controller against
// the offline-oracle static DP (whole-trace profiles), equal
// partitioning, and free-for-all sharing — including on workloads whose
// behaviour shifts mid-run, where only the controller can follow.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/corun.hpp"
#include "trace/interleave.hpp"

namespace ocps {

/// Controller knobs.
struct ControllerConfig {
  std::size_t capacity = 1024;       ///< total cache units
  std::size_t epoch_length = 50000;  ///< interleaved accesses per epoch
  double sampling_rate = 0.05;       ///< SHARDS rate per program
  std::uint64_t sampling_seed = 0x0C5;
  /// Blend factor for the MRC estimate: weight of the newest epoch vs the
  /// running estimate (1.0 = use only the latest epoch).
  double ewma_alpha = 0.6;
  /// Optional per-program floor (QoS units) enforced every epoch.
  std::size_t min_units = 0;
};

/// Outcome of a controller run.
struct ControllerResult {
  CoRunResult sim;  ///< realized per-program accesses/misses
  std::vector<std::vector<std::size_t>> alloc_history;  ///< per epoch
  double sampled_fraction = 0.0;  ///< profiling cost proxy
  std::size_t epochs = 0;
};

/// Runs the closed loop over an interleaved trace with `num_programs`
/// programs. Throws CheckError on malformed input.
ControllerResult run_online_controller(const InterleavedTrace& trace,
                                       std::size_t num_programs,
                                       const ControllerConfig& config);

}  // namespace ocps
