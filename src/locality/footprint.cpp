#include "locality/footprint.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace ocps {

double FootprintCurve::operator()(double w) const {
  OCPS_CHECK(!fp.empty(), "empty footprint");
  if (w <= 0.0) return 0.0;
  double n = static_cast<double>(fp.size() - 1);
  if (w >= n) return fp.back();
  std::size_t lo = static_cast<std::size_t>(w);
  double t = w - static_cast<double>(lo);
  return fp[lo] + t * (fp[lo + 1] - fp[lo]);
}

double FootprintCurve::inverse(double target) const {
  OCPS_CHECK(!fp.empty(), "empty footprint");
  if (target <= fp.front()) return 0.0;
  if (target >= fp.back()) return static_cast<double>(fp.size() - 1);
  // fp is non-decreasing; binary search for the first index with
  // fp[i] >= target, then interpolate inside the preceding segment.
  auto it = std::lower_bound(fp.begin(), fp.end(), target);
  std::size_t hi = static_cast<std::size_t>(it - fp.begin());
  OCPS_CHECK(hi > 0, "inverse landed at origin unexpectedly");
  std::size_t lo = hi - 1;
  double dy = fp[hi] - fp[lo];
  if (dy <= 0.0) return static_cast<double>(hi);
  double t = (target - fp[lo]) / dy;
  return static_cast<double>(lo) + t;
}

PiecewiseLinear FootprintCurve::to_curve(std::size_t max_knots) const {
  PiecewiseLinear dense = PiecewiseLinear::from_dense(fp);
  if (max_knots == 0 || dense.size() <= max_knots) return dense;
  // Error-bounded simplification keeps footprint cliffs (phase boundaries)
  // that uniform decimation would smear into the wrong MRC.
  return dense.simplify_to(0.005, max_knots);
}

FootprintCurve footprint_from_profile(const ReuseProfile& p) {
  FootprintCurve out;
  out.trace_length = p.trace_length;
  out.distinct = p.distinct;
  const std::uint64_t n = p.trace_length;
  out.fp.assign(n + 1, 0.0);
  if (n == 0) return out;

  const double m = static_cast<double>(p.distinct);

  // Suffix sums over rt of freq and rt*freq, so that
  //   A(w) = Σ_{rt >= w+2} (rt - 1 - w) freq(rt)
  //        = U(w+2) - (w + 1) * T(w+2)
  // with T(x) = Σ_{rt >= x} freq, U(x) = Σ_{rt >= x} rt * freq.
  // first/last boundary terms use the same trick over f_k and n - l_k + 1.
  const std::size_t lim = static_cast<std::size_t>(n) + 2;
  std::vector<double> T(lim + 1, 0.0), U(lim + 1, 0.0);
  std::vector<double> F(lim + 1, 0.0), FX(lim + 1, 0.0);
  std::vector<double> L(lim + 1, 0.0), LX(lim + 1, 0.0);

  // Histogram of h_k = n - l_k + 1 (trailing boundary contribution).
  std::vector<std::uint64_t> trail(lim + 1, 0);
  for (std::uint64_t pos = 1; pos <= n; ++pos) {
    std::uint64_t cnt = p.last_count[pos];
    if (cnt) trail[n - pos + 1] += cnt;
  }

  for (std::size_t x = lim - 1; x + 1 >= 1; --x) {
    double f = (x < p.freq.size()) ? static_cast<double>(p.freq[x]) : 0.0;
    T[x] = T[x + 1] + f;
    U[x] = U[x + 1] + f * static_cast<double>(x);
    double fc =
        (x < p.first_count.size()) ? static_cast<double>(p.first_count[x]) : 0.0;
    F[x] = F[x + 1] + fc;
    FX[x] = FX[x + 1] + fc * static_cast<double>(x);
    double lc = (x <= lim) ? static_cast<double>(trail[x]) : 0.0;
    L[x] = L[x + 1] + lc;
    LX[x] = LX[x + 1] + lc * static_cast<double>(x);
    if (x == 0) break;
  }

  out.fp[0] = 0.0;
  for (std::uint64_t w = 1; w <= n; ++w) {
    double A = U[w + 2] - static_cast<double>(w + 1) * T[w + 2];
    // Σ_k max(0, f_k - w) = FX(w+1) - w * F(w+1); same for trailing.
    double B = FX[w + 1] - static_cast<double>(w) * F[w + 1];
    double Cc = LX[w + 1] - static_cast<double>(w) * L[w + 1];
    double denom = static_cast<double>(n - w + 1);
    double val = m - (A + B + Cc) / denom;
    // Numerical safety: fp must stay within [0, m] and non-decreasing.
    val = std::clamp(val, 0.0, m);
    out.fp[w] = std::max(val, out.fp[w - 1]);
  }
  return out;
}

FootprintCurve compute_footprint(const Trace& trace) {
  return footprint_from_profile(profile_reuse(trace));
}

std::vector<double> footprint_brute_force(const Trace& trace,
                                          std::size_t w_max) {
  const std::size_t n = trace.length();
  OCPS_CHECK(w_max <= n, "window longer than trace");
  std::vector<double> fp(w_max + 1, 0.0);
  for (std::size_t w = 1; w <= w_max; ++w) {
    // Sliding window with occurrence counts: O(n) per window length.
    std::unordered_map<Block, std::size_t> count;
    std::size_t distinct = 0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (count[trace.accesses[i]]++ == 0) ++distinct;
      if (i + 1 >= w) {
        sum += static_cast<double>(distinct);
        Block out_block = trace.accesses[i + 1 - w];
        if (--count[out_block] == 0) {
          --distinct;
          count.erase(out_block);
        }
      }
    }
    fp[w] = sum / static_cast<double>(n - w + 1);
  }
  return fp;
}

}  // namespace ocps
