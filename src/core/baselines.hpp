// Baseline-constrained ("fair") optimization (§VI).
//
// Baseline optimization minimizes the group miss ratio subject to: no
// member program may end up with a higher miss ratio than it has under a
// baseline partition. Two baselines are studied:
//   * Equal   — every program gets C/P units (Xie & Loh's "socialist"),
//   * Natural — the free-for-all sharing occupancies (the "capitalist").
//
// Because LRU miss ratios are non-increasing in cache size (inclusion
// property), "no worse than baseline" is equivalent to a per-program
// minimum allocation — the smallest size whose miss ratio is at or below
// the baseline's. The constrained problem is then the same DP with lower
// bounds, and it is always feasible: each program's bound is at most its
// baseline share, and the baseline shares sum to C.
#pragma once

#include <vector>

#include "core/composition.hpp"
#include "core/dp_partition.hpp"

namespace ocps {

/// Equal partition of `capacity` units among `programs` programs (units
/// are integers; the first `capacity % programs` programs get the extra
/// unit, matching a 2MB-per-program split when divisible).
std::vector<std::size_t> equal_partition(std::size_t programs,
                                         std::size_t capacity);

/// Per-program minimum allocations implied by a baseline allocation:
/// min_alloc[i] = smallest c with mr_i(c) <= mr_i(baseline_i). Fractional
/// baselines (natural occupancies) are supported.
std::vector<std::size_t> baseline_min_allocs(
    const CoRunGroup& group, const std::vector<double>& baseline_alloc);

/// Equal-baseline optimization: group-optimal subject to no program being
/// worse than under the equal partition. Pass a DpScratch to reuse the DP
/// table across calls (see dp_partition.hpp).
DpResult optimize_equal_baseline(const CoRunGroup& group, CostMatrixView cost,
                                 std::size_t capacity,
                                 DpScratch* scratch = nullptr);

/// Natural-baseline optimization: group-optimal subject to no program being
/// worse than under free-for-all sharing (the natural partition).
DpResult optimize_natural_baseline(const CoRunGroup& group,
                                   CostMatrixView cost, std::size_t capacity,
                                   DpScratch* scratch = nullptr);

}  // namespace ocps
