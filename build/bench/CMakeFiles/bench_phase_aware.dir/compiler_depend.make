# Empty compiler generated dependencies file for bench_phase_aware.
# This may be replaced when dependencies are built.
