// Tests for src/cachesim: LRU, set-associative, shared / partitioned /
// partition-sharing co-run simulation.
#include <gtest/gtest.h>

#include "cachesim/corun.hpp"
#include "cachesim/lru.hpp"
#include "cachesim/set_assoc.hpp"
#include "locality/reuse_distance.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

TEST(Lru, BasicHitMissSequence) {
  LruCache cache(2);
  EXPECT_FALSE(cache.access(1));  // miss
  EXPECT_FALSE(cache.access(2));  // miss
  EXPECT_TRUE(cache.access(1));   // hit
  EXPECT_FALSE(cache.access(3));  // miss, evicts 2 (LRU)
  EXPECT_FALSE(cache.access(2));  // miss
  EXPECT_TRUE(cache.access(3));   // hit
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(3);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  cache.access(1);        // 2 is now LRU
  cache.access(4);        // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  Block victim = 0;
  EXPECT_TRUE(cache.last_eviction(&victim));
  EXPECT_EQ(victim, 2u);
}

TEST(Lru, ZeroCapacityAlwaysMisses) {
  LruCache cache(0);
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Lru, SizeNeverExceedsCapacity) {
  LruCache cache(5);
  for (Block b = 0; b < 100; ++b) cache.access(b % 17);
  EXPECT_LE(cache.size(), 5u);
}

TEST(Lru, ResetClearsEverything) {
  LruCache cache(4);
  cache.access(1);
  cache.access(2);
  cache.reset();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, InclusionProperty) {
  // Misses must be non-increasing in capacity (stack property of LRU).
  Trace t = make_zipf(20000, 300, 0.8, 21);
  std::uint64_t prev = ~0ull;
  for (std::size_t c : {1, 5, 20, 60, 120, 250, 400}) {
    LruCache cache(c);
    for (Block b : t.accesses) cache.access(b);
    EXPECT_LE(cache.misses(), prev) << "c=" << c;
    prev = cache.misses();
  }
}

TEST(SetAssoc, FullyAssociativeEquivalence) {
  // 1 set of k ways is exactly a k-entry fully-associative LRU.
  Trace t = make_zipf(5000, 60, 1.0, 22);
  SetAssociativeCache sa(1, 16);
  LruCache fa(16);
  for (Block b : t.accesses) {
    bool h1 = sa.access(b);
    bool h2 = fa.access(b);
    ASSERT_EQ(h1, h2);
  }
  EXPECT_EQ(sa.misses(), fa.misses());
}

TEST(SetAssoc, RejectsNonPowerOfTwoSets) {
  EXPECT_THROW(SetAssociativeCache(3, 4), CheckError);
  EXPECT_THROW(SetAssociativeCache(4, 0), CheckError);
}

TEST(SetAssoc, HigherAssociativityApproachesFullyAssociative) {
  Trace t = make_zipf(40000, 500, 0.9, 23);
  LruCache fa(256);
  for (Block b : t.accesses) fa.access(b);
  double fa_mr = fa.miss_ratio();

  SetAssociativeCache low(64, 4);    // 256 blocks, 4-way
  SetAssociativeCache high(16, 16);  // 256 blocks, 16-way
  for (Block b : t.accesses) {
    low.access(b);
    high.access(b);
  }
  double err_low = std::abs(low.miss_ratio() - fa_mr);
  double err_high = std::abs(high.miss_ratio() - fa_mr);
  EXPECT_LE(err_high, err_low + 0.01);
  EXPECT_LT(err_high, 0.05);
}

TEST(SetAssoc, CapacityIsSetsTimesWays) {
  SetAssociativeCache sa(8, 4);
  EXPECT_EQ(sa.capacity(), 32u);
}

InterleavedTrace two_program_mix(std::size_t len = 20000) {
  Trace a = make_zipf(5000, 80, 1.0, 24);
  Trace b = make_cyclic(5000, 50);
  return interleave_proportional({a, b}, {1.0, 1.0}, len);
}

TEST(CoRun, SharedAttributesAllAccesses) {
  InterleavedTrace mix = two_program_mix();
  CoRunResult r = simulate_shared(mix, 100);
  EXPECT_EQ(r.total_accesses(), mix.length());
  EXPECT_EQ(r.accesses.size(), 2u);
  EXPECT_GT(r.accesses[0], 0u);
  EXPECT_GT(r.accesses[1], 0u);
}

TEST(CoRun, SharedOccupancySumsToCapacityWhenWarm) {
  InterleavedTrace mix = two_program_mix(40000);
  CoRunOptions opt;
  opt.warmup = 5000;
  opt.occupancy_period = 16;
  CoRunResult r = simulate_shared(mix, 100, opt);
  ASSERT_EQ(r.mean_occupancy.size(), 2u);
  double total = r.mean_occupancy[0] + r.mean_occupancy[1];
  EXPECT_NEAR(total, 100.0, 1e-6);  // warm cache stays full
}

TEST(CoRun, SharedEqualsSingleCacheOnWholeTrace) {
  InterleavedTrace mix = two_program_mix();
  CoRunResult r = simulate_shared(mix, 64);
  LruCache cache(64);
  std::uint64_t misses = 0;
  for (Block b : mix.blocks)
    if (!cache.access(b)) ++misses;
  EXPECT_EQ(r.total_misses(), misses);
}

TEST(CoRun, PartitionedMatchesIndependentRuns) {
  Trace a = make_zipf(5000, 80, 1.0, 25);
  Trace b = make_cyclic(5000, 50);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 10000);
  CoRunResult r = simulate_partitioned(mix, {60, 40});

  // Each program alone in its partition: replay the same per-program
  // sub-streams into private caches.
  LruCache ca(60), cb(40);
  std::uint64_t miss_a = 0, miss_b = 0;
  for (std::size_t i = 0; i < mix.length(); ++i) {
    if (mix.owners[i] == 0) {
      if (!ca.access(mix.blocks[i])) ++miss_a;
    } else {
      if (!cb.access(mix.blocks[i])) ++miss_b;
    }
  }
  EXPECT_EQ(r.misses[0], miss_a);
  EXPECT_EQ(r.misses[1], miss_b);
}

TEST(CoRun, PartitionSharingOneGroupEqualsShared) {
  InterleavedTrace mix = two_program_mix();
  CoRunResult shared = simulate_shared(mix, 80);
  CoRunResult one_group =
      simulate_partition_sharing(mix, {0, 0}, {80});
  EXPECT_EQ(shared.total_misses(), one_group.total_misses());
  EXPECT_EQ(shared.misses[0], one_group.misses[0]);
  EXPECT_EQ(shared.misses[1], one_group.misses[1]);
}

TEST(CoRun, PartitionSharingSingletonsEqualsPartitioned) {
  InterleavedTrace mix = two_program_mix();
  CoRunResult a = simulate_partitioned(mix, {50, 30});
  CoRunResult b = simulate_partition_sharing(mix, {0, 1}, {50, 30});
  EXPECT_EQ(a.misses[0], b.misses[0]);
  EXPECT_EQ(a.misses[1], b.misses[1]);
}

TEST(CoRun, WarmupExcludedFromStats) {
  InterleavedTrace mix = two_program_mix(10000);
  CoRunOptions opt;
  opt.warmup = 4000;
  CoRunResult r = simulate_shared(mix, 64, opt);
  EXPECT_EQ(r.total_accesses(), 6000u);
}

TEST(CoRun, RejectsIncompleteGroupMap) {
  InterleavedTrace mix = two_program_mix();
  EXPECT_THROW(simulate_partition_sharing(mix, {0}, {64}), CheckError);
  EXPECT_THROW(simulate_partition_sharing(mix, {0, 3}, {64}), CheckError);
}

TEST(CoRun, SharedMissRatiosBracketPartitioning) {
  // Sanity: a cache big enough for everything gives only cold misses in
  // all schemes.
  Trace a = make_cyclic(4000, 30);
  Trace b = make_cyclic(4000, 40);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 8000);
  CoRunResult shared = simulate_shared(mix, 100);
  CoRunResult part = simulate_partitioned(mix, {50, 50});
  EXPECT_EQ(shared.total_misses(), 70u);
  EXPECT_EQ(part.total_misses(), 70u);
}

TEST(CoRun, Fig1PartitionSharingBeatsBothExtremes) {
  // The paper's Fig. 1 scenario, scaled up: cores 1-2 stream (polluters),
  // cores 3-4 alternate large/small working sets in antiphase. Sharing a
  // partition lets 3 and 4 use the space alternately; full sharing lets
  // the streams pollute; full partitioning starves the peaks.
  const std::size_t phase = 400;
  const std::size_t reps = 30;
  // Antiphase phased programs over the same region sizes.
  std::vector<Phase> big_small = {{phase, 48, 0, false},
                                  {phase, 4, 0, false}};
  std::vector<Phase> small_big = {{phase, 4, 0, false},
                                  {phase, 48, 0, false}};
  Trace c3 = make_phased(big_small, reps);
  Trace c4 = make_phased(small_big, reps);
  Trace c1 = make_stream(phase * reps * 2);
  Trace c2 = make_stream(phase * reps * 2);

  std::vector<Trace> traces = {c1, c2, c3, c4};
  std::vector<double> rates = {1.0, 1.0, 1.0, 1.0};
  InterleavedTrace mix =
      interleave_proportional(traces, rates, phase * reps * 8);

  const std::size_t C = 64;
  CoRunResult shared = simulate_shared(mix, C);
  // Best static partitioning must give both 3 and 4 enough for their large
  // phase simultaneously: impossible within C once streams get anything.
  CoRunResult partitioned = simulate_partitioned(mix, {4, 4, 28, 28});
  // Partition-sharing: wall off one unit for each stream, let 3 and 4
  // share the rest (56 units >= 48 + 4 in any phase combination).
  CoRunResult sharing_scheme =
      simulate_partition_sharing(mix, {0, 1, 2, 2}, {4, 4, 56});

  EXPECT_LT(sharing_scheme.group_miss_ratio(),
            partitioned.group_miss_ratio());
  EXPECT_LT(sharing_scheme.group_miss_ratio(), shared.group_miss_ratio());
}

}  // namespace
}  // namespace ocps
