// Synthetic trace generators.
//
// The paper's results are functions of per-program miss-ratio-curve shapes,
// so the generators here are chosen to produce the locality classes seen in
// SPEC CPU2006:
//
//  * streaming / cyclic scans   -> flat-high or single-cliff MRCs (the LRU
//                                  pathological case; non-convex),
//  * sawtooth scans             -> LRU-friendly, near-linear MRCs,
//  * Zipfian / hot-cold mixes   -> smooth convex MRCs,
//  * phased compositions        -> multi-cliff non-convex MRCs,
//  * stack-distance driven      -> any target MRC sculpted directly.
//
// All generators are deterministic given their seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ocps {

/// Cyclic sequential scan over `wss` blocks: 0,1,...,wss-1,0,1,...
/// Under LRU this is the classic thrash pattern: miss ratio 1 below the
/// working-set size, ~0 above it (a cliff).
Trace make_cyclic(std::size_t length, std::size_t wss);

/// Pure stream: every access touches a fresh block (no reuse; compulsory
/// misses only). Models `lbm`-like behaviour where no realistic cache helps.
Trace make_stream(std::size_t length);

/// Forward-then-backward scan over `wss` blocks (0..wss-1, wss-2..0, ...).
/// LRU-friendly: the miss ratio decreases roughly smoothly with cache size.
Trace make_sawtooth(std::size_t length, std::size_t wss);

/// Zipfian accesses over `blocks` blocks with exponent alpha > 0.
/// Produces smooth convex MRCs typical of pointer-chasing integer codes.
Trace make_zipf(std::size_t length, std::size_t blocks, double alpha,
                std::uint64_t seed);

/// Uniform random accesses over `blocks` blocks.
Trace make_uniform(std::size_t length, std::size_t blocks, std::uint64_t seed);

/// Mixture: with probability hot_fraction access one of `hot_blocks` blocks
/// (uniformly), otherwise one of `cold_blocks` blocks. Two-regime convex MRC.
Trace make_hot_cold(std::size_t length, std::size_t hot_blocks,
                    std::size_t cold_blocks, double hot_fraction,
                    std::uint64_t seed);

/// A background scan component of a scan-mix workload.
struct ScanComponent {
  std::size_t wss = 0;      ///< blocks in the scanned region
  double fraction = 0.0;    ///< share of accesses that hit this scan
};

/// SPEC-like composite: a Zipfian hot set plus one or more cyclic
/// background scans over disjoint regions. The hot set keeps the base miss
/// ratio low; each scan adds a miss-ratio plateau of height ~`fraction`
/// that drops off (a cliff) once the cache covers wss + hot_blocks — the
/// non-convex MRC shape of mcf/soplex-style programs, at realistic
/// (few-percent) miss-ratio magnitudes. alpha == 0 selects a uniform hot
/// set.
Trace make_scan_mix(std::size_t length, std::size_t hot_blocks, double alpha,
                    const std::vector<ScanComponent>& scans,
                    std::uint64_t seed);

/// One phase of a phased workload.
struct Phase {
  std::size_t length = 0;    ///< accesses in this phase
  std::size_t wss = 1;       ///< working-set size of the phase
  Block block_offset = 0;    ///< block-id offset (phases may overlap or not)
  bool sawtooth = false;     ///< sawtooth (true) or cyclic (false) scan
};

/// Concatenates phases and repeats the whole phase sequence `repeats` times.
/// Distinct per-phase working sets yield multi-cliff, non-convex MRCs and
/// the strong phase behaviour of Fig. 1.
Trace make_phased(const std::vector<Phase>& phases, std::size_t repeats);

/// Stack-distance-driven generator: at every step draws a reuse (stack)
/// depth d >= 1 from `depth_sampler`; accesses the d-th most-recently-used
/// block, or a brand-new block when d exceeds the current stack. Because an
/// LRU cache of size c misses exactly the accesses with stack distance > c,
/// this sculpts the miss-ratio curve directly: mr(c) ~= P(d > c).
Trace make_sd_driven(std::size_t length,
                     const std::function<std::size_t(Rng&)>& depth_sampler,
                     std::uint64_t seed);

/// Convenience wrapper over make_sd_driven: draws stack depths from the
/// discrete distribution {depth[i] with weight weight[i]}; a depth of
/// SIZE_MAX means "new block".
Trace make_sd_mixture(std::size_t length,
                      const std::vector<std::size_t>& depths,
                      const std::vector<double>& weights, std::uint64_t seed);

}  // namespace ocps
