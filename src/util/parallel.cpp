#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/config.hpp"

namespace ocps {

std::size_t parallel_thread_count() {
  std::int64_t forced = env_int("OCPS_THREADS", 0);
  if (forced > 0) return static_cast<std::size_t>(forced);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = std::min(parallel_thread_count(), n);
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Dynamic scheduling: workers claim chunks from a shared counter so that
  // uneven per-item cost (e.g. DP with different bounds) balances out.
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ocps
