// Minimal command-line argument parsing for the ocps CLI tool.
//
// Grammar: positionals and --key value / --flag options, in any order.
// "--" ends option parsing. Unknown options are collected and can be
// rejected by the caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ocps {

/// Parsed argv.
class ArgParser {
 public:
  /// `flags` lists option names that take no value (booleans); everything
  /// else given as --name consumes the following token as its value.
  ArgParser(int argc, const char* const* argv,
            const std::vector<std::string>& flags = {});

  const std::vector<std::string>& positionals() const { return positional_; }

  bool has(const std::string& name) const;

  /// Value accessors with defaults; throw CheckError when the stored value
  /// does not parse.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Options that were passed but are not in `known`; callers use this to
  /// reject typos.
  std::vector<std::string> unknown_options(
      const std::vector<std::string>& known) const;

  /// Throws CheckError when any passed option is not in `known`. The
  /// message names the offending option and suggests the closest known
  /// flag (by edit distance), so `--fault-rat` fails loudly with
  /// "did you mean --fault-rate?" instead of being silently ignored.
  void reject_unknown(const std::vector<std::string>& known) const;

  /// Same, with routing for flags that exist on *other* subcommands:
  /// `known_elsewhere` maps such a flag to a human-readable list of the
  /// subcommands that accept it, so `ocps mrc --threads 4` fails with
  /// "option --threads is not accepted by this subcommand (valid for:
  /// sweep, serve, query)" instead of a nearest-typo guess.
  void reject_unknown(
      const std::vector<std::string>& known,
      const std::map<std::string, std::string>& known_elsewhere) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // flag -> "" for booleans
};

}  // namespace ocps
