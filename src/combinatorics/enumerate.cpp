#include "combinatorics/enumerate.hpp"

#include "combinatorics/counting.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {

// Restricted-growth-string recursion: element i joins one of the existing
// groups or opens a new one. The growth-string canonical form guarantees
// each set partition is produced exactly once, groups ordered by smallest
// element.
bool rgs_recurse(std::uint32_t i, std::uint32_t n, std::uint32_t max_groups,
                 SetPartition& groups,
                 const std::function<bool(const SetPartition&)>& visit) {
  if (i == n) return visit(groups);
  // Index-based loop: recursion pushes/pops groups, which can reallocate
  // the vector, so element references must be re-taken each time.
  const std::size_t existing = groups.size();
  for (std::size_t gi = 0; gi < existing; ++gi) {
    groups[gi].push_back(i);
    bool keep = rgs_recurse(i + 1, n, max_groups, groups, visit);
    groups[gi].pop_back();
    if (!keep) return false;
  }
  if (max_groups == 0 || groups.size() < max_groups) {
    groups.push_back({i});
    bool keep = rgs_recurse(i + 1, n, max_groups, groups, visit);
    groups.pop_back();
    if (!keep) return false;
  }
  return true;
}

}  // namespace

void for_each_set_partition(
    std::uint32_t n, std::uint32_t max_groups,
    const std::function<bool(const SetPartition&)>& visit) {
  OCPS_CHECK(n >= 1, "set partition of an empty set is not useful here");
  SetPartition groups;
  rgs_recurse(0, n, max_groups, groups, visit);
}

std::uint64_t count_set_partitions(std::uint32_t n, std::uint32_t max_groups) {
  std::uint32_t hi = (max_groups == 0) ? n : std::min(max_groups, n);
  std::uint64_t total = 0;
  for (std::uint32_t k = 1; k <= hi; ++k) {
    auto s = stirling2_128(n, k);
    OCPS_CHECK(s.has_value(), "Stirling overflow for n=" << n);
    total += static_cast<std::uint64_t>(*s);
  }
  return total;
}

namespace {

bool comp_recurse(
    std::uint32_t part, std::uint32_t k, std::uint32_t remaining,
    std::uint32_t minimum, std::vector<std::uint32_t>& current,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit) {
  if (part + 1 == k) {
    if (remaining < minimum) return true;  // infeasible leaf, skip
    current[part] = remaining;
    return visit(current);
  }
  // Reserve minimum units for each remaining part.
  std::uint32_t reserve = minimum * (k - part - 1);
  if (remaining < minimum + reserve) return true;
  for (std::uint32_t c = minimum; c + reserve <= remaining; ++c) {
    current[part] = c;
    if (!comp_recurse(part + 1, k, remaining - c, minimum, current, visit))
      return false;
  }
  return true;
}

}  // namespace

void for_each_composition(
    std::uint32_t k, std::uint32_t total, std::uint32_t minimum,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit) {
  OCPS_CHECK(k >= 1, "composition needs at least one part");
  std::vector<std::uint32_t> current(k, 0);
  comp_recurse(0, k, total, minimum, current, visit);
}

std::uint64_t count_compositions(std::uint32_t k, std::uint32_t total,
                                 std::uint32_t minimum) {
  // Shift each part down by `minimum`: weak compositions of
  // total - k*minimum into k parts = C(total - k*minimum + k - 1, k - 1).
  std::uint64_t need = static_cast<std::uint64_t>(k) * minimum;
  if (total < need) return 0;
  auto c = binomial128(total - need + k - 1, k - 1);
  OCPS_CHECK(c.has_value(), "composition count overflow");
  return static_cast<std::uint64_t>(*c);
}

void for_each_subset(
    std::uint32_t n, std::uint32_t k,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit) {
  OCPS_CHECK(k <= n, "subset size exceeds ground set");
  if (k == 0) {
    std::vector<std::uint32_t> empty;
    visit(empty);
    return;
  }
  std::vector<std::uint32_t> idx(k);
  for (std::uint32_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    if (!visit(idx)) return;
    // Advance to the next combination in lexicographic order.
    std::int64_t pos = static_cast<std::int64_t>(k) - 1;
    while (pos >= 0 && idx[static_cast<std::size_t>(pos)] ==
                           n - k + static_cast<std::uint32_t>(pos)) {
      --pos;
    }
    if (pos < 0) return;
    ++idx[static_cast<std::size_t>(pos)];
    for (std::size_t j = static_cast<std::size_t>(pos) + 1; j < k; ++j)
      idx[j] = idx[j - 1] + 1;
  }
}

std::vector<std::vector<std::uint32_t>> all_subsets(std::uint32_t n,
                                                    std::uint32_t k) {
  std::vector<std::vector<std::uint32_t>> result;
  for_each_subset(n, k, [&](const std::vector<std::uint32_t>& s) {
    result.push_back(s);
    return true;
  });
  return result;
}

}  // namespace ocps
