#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace ocps {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OCPS_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  OCPS_CHECK(cells.size() == header_.size(),
             "row has " << cells.size() << " cells, expected "
                        << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (v * 100.0) << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Cells are numeric or simple identifiers; quote only if needed.
      bool needs_quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (needs_quote) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ocps
