#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ocps {

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  const std::size_t n = xs.size();
  s.median = (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = (n > 1) ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> xs, double p) {
  OCPS_CHECK(!xs.empty(), "percentile of empty sample");
  OCPS_CHECK(p >= 0.0 && p <= 100.0, "p out of range: " << p);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double t = rank - static_cast<double>(lo);
  return xs[lo] + t * (xs[hi] - xs[lo]);
}

double fraction_at_least(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t k = 0;
  for (double x : xs)
    if (x >= threshold) ++k;
  return static_cast<double>(k) / static_cast<double>(xs.size());
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  OCPS_CHECK(xs.size() == ys.size(), "pearson: length mismatch");
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  double mx = mean_of(xs), my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ocps
