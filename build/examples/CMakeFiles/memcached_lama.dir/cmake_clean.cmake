file(REMOVE_RECURSE
  "CMakeFiles/memcached_lama.dir/memcached_lama.cpp.o"
  "CMakeFiles/memcached_lama.dir/memcached_lama.cpp.o.d"
  "memcached_lama"
  "memcached_lama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_lama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
