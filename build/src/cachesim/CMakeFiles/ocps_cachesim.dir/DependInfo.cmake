
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/belady.cpp" "src/cachesim/CMakeFiles/ocps_cachesim.dir/belady.cpp.o" "gcc" "src/cachesim/CMakeFiles/ocps_cachesim.dir/belady.cpp.o.d"
  "/root/repo/src/cachesim/corun.cpp" "src/cachesim/CMakeFiles/ocps_cachesim.dir/corun.cpp.o" "gcc" "src/cachesim/CMakeFiles/ocps_cachesim.dir/corun.cpp.o.d"
  "/root/repo/src/cachesim/lru.cpp" "src/cachesim/CMakeFiles/ocps_cachesim.dir/lru.cpp.o" "gcc" "src/cachesim/CMakeFiles/ocps_cachesim.dir/lru.cpp.o.d"
  "/root/repo/src/cachesim/policies.cpp" "src/cachesim/CMakeFiles/ocps_cachesim.dir/policies.cpp.o" "gcc" "src/cachesim/CMakeFiles/ocps_cachesim.dir/policies.cpp.o.d"
  "/root/repo/src/cachesim/set_assoc.cpp" "src/cachesim/CMakeFiles/ocps_cachesim.dir/set_assoc.cpp.o" "gcc" "src/cachesim/CMakeFiles/ocps_cachesim.dir/set_assoc.cpp.o.d"
  "/root/repo/src/cachesim/way_partitioned.cpp" "src/cachesim/CMakeFiles/ocps_cachesim.dir/way_partitioned.cpp.o" "gcc" "src/cachesim/CMakeFiles/ocps_cachesim.dir/way_partitioned.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ocps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ocps_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
