// Prometheus text exposition (format 0.0.4), histogram quantile
// estimation, and the sliding-window histogram used by the serve daemon
// for "last N seconds" latency percentiles.

#ifndef OCPS_OBS_DISABLED

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "obs/obs.hpp"

namespace ocps::obs {

namespace {

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; registry
// names use dots (`serve.request_ns`), which become underscores.
void write_prom_name(std::ostream& os, const std::string& name,
                     const char* suffix = nullptr) {
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    os << (ok ? c : '_');
  }
  if (suffix) os << suffix;
}

void write_prom_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

}  // namespace

namespace {

// Prometheus label values escape backslash, double-quote, and newline.
void write_prom_label_value(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '\\' || c == '"') os << '\\';
    if (c == '\n') {
      os << "\\n";
      continue;
    }
    os << c;
  }
}

void write_build_info_line(std::ostream& os) {
  const BuildInfo build = build_info();
  os << "# TYPE ocps_build_info gauge\nocps_build_info{git_sha=\"";
  write_prom_label_value(os, build.git_sha);
  os << "\",compiler=\"";
  write_prom_label_value(os, build.compiler);
  os << "\",simd_kernel=\"";
  write_prom_label_value(os, build.simd_kernel);
  os << "\"} 1\n";
}

}  // namespace

void write_metrics_prometheus(std::ostream& os) {
  write_build_info_line(os);
  MetricsSnapshot snap = metrics_snapshot();
  for (const auto& [name, v] : snap.counters) {
    os << "# TYPE ";
    write_prom_name(os, name);
    os << " counter\n";
    write_prom_name(os, name);
    os << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    os << "# TYPE ";
    write_prom_name(os, name);
    os << " gauge\n";
    write_prom_name(os, name);
    os << ' ';
    write_prom_double(os, v);
    os << '\n';
  }
  for (const auto& h : snap.histograms) {
    os << "# TYPE ";
    write_prom_name(os, h.name);
    os << " histogram\n";
    auto exemplars = exemplars_for(h.name);
    auto exemplar_suffix = [&](std::size_t bucket) {
      for (const auto& [i, ex] : exemplars) {
        if (i != bucket) continue;
        os << " # {trace_id=\"" << ex.trace_id << "\"} ";
        write_prom_double(os, ex.value);
        break;
      }
    };
    // Cumulative buckets at each non-empty boundary; `le` is the bucket's
    // exclusive upper bound, which Prometheus treats as inclusive — with
    // power-of-two boundaries the discrepancy affects only exact powers
    // of two and is within the log-bucket resolution anyway.
    std::uint64_t cum = 0;
    std::size_t last_inf_bucket = kHistogramBuckets;  // folded buckets
    for (const auto& [i, n] : h.buckets) {
      cum += n;
      double hi = Histogram::bucket_upper_bound(i);
      if (std::isinf(hi)) {  // folded into the +Inf bucket below
        last_inf_bucket = i;
        continue;
      }
      write_prom_name(os, h.name, "_bucket");
      os << "{le=\"";
      write_prom_double(os, hi);
      os << "\"} " << cum;
      exemplar_suffix(i);
      os << '\n';
    }
    write_prom_name(os, h.name, "_bucket");
    os << "{le=\"+Inf\"} " << h.count;
    if (last_inf_bucket < kHistogramBuckets) exemplar_suffix(last_inf_bucket);
    os << '\n';
    write_prom_name(os, h.name, "_sum");
    os << ' ';
    write_prom_double(os, h.sum);
    os << '\n';
    write_prom_name(os, h.name, "_count");
    os << ' ' << h.count << '\n';
  }
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (const auto& [i, n] : h.buckets) {
    double before = static_cast<double>(cum);
    cum += n;
    if (static_cast<double>(cum) < target) continue;
    double lo = Histogram::bucket_lower_bound(i);
    double hi = Histogram::bucket_upper_bound(i);
    if (std::isinf(hi)) return lo;  // open-ended: clamp to lower bound
    if (i == 0) lo = 0.0;
    double frac = n > 0 ? (target - before) / static_cast<double>(n) : 0.0;
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  // Unreachable for a consistent snapshot; fall back to the top bucket.
  return h.buckets.empty()
             ? 0.0
             : Histogram::bucket_lower_bound(h.buckets.back().first);
}

// One slot = one wall second of observations. A slot is lazily recycled
// when a newer second hashes onto it, so the ring needs window+1 slots to
// never evict an in-window second.
struct WindowedHistogram::Slot {
  std::uint64_t second = std::numeric_limits<std::uint64_t>::max();
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  double sum = 0.0;
  std::uint64_t count = 0;
};

WindowedHistogram::WindowedHistogram(unsigned window_seconds)
    : slots_(window_seconds > 0 ? window_seconds + 1 : 2),
      window_(window_seconds > 0 ? window_seconds : 1) {}

WindowedHistogram::~WindowedHistogram() = default;

void WindowedHistogram::observe(double v) noexcept {
  observe_at(v, now_ns());
}

void WindowedHistogram::observe_at(double v, std::uint64_t now) noexcept {
  std::uint64_t sec = now / 1000000000ULL;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[sec % slots_.size()];
  if (s.second != sec) {
    s.second = sec;
    s.buckets.fill(0);
    s.sum = 0.0;
    s.count = 0;
  }
  ++s.buckets[Histogram::bucket_index(v)];
  if (std::isfinite(v)) s.sum += v;
  ++s.count;
}

HistogramSnapshot WindowedHistogram::snapshot(const std::string& name) const {
  return snapshot_at(name, now_ns());
}

HistogramSnapshot WindowedHistogram::snapshot_at(const std::string& name,
                                                 std::uint64_t now) const {
  std::uint64_t sec = now / 1000000000ULL;
  std::uint64_t oldest = sec >= window_ ? sec - window_ + 1 : 0;
  std::array<std::uint64_t, kHistogramBuckets> merged{};
  HistogramSnapshot out;
  out.name = name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& s : slots_) {
      if (s.second < oldest || s.second > sec) continue;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        merged[i] += s.buckets[i];
      out.sum += s.sum;
      out.count += s.count;
    }
  }
  for (std::size_t i = 0; i < kHistogramBuckets; ++i)
    if (merged[i] > 0) out.buckets.emplace_back(i, merged[i]);
  return out;
}

}  // namespace ocps::obs

#else  // OCPS_OBS_DISABLED

#include <ostream>

#include "obs/obs.hpp"

namespace ocps::obs {

void write_metrics_prometheus(std::ostream& os) {
  // Even with telemetry compiled out, the build identity still holds.
  const BuildInfo build = build_info();
  auto escaped = [&os](const std::string& s) {
    for (char c : s) {
      if (c == '\\' || c == '"') os << '\\';
      os << c;
    }
  };
  os << "# TYPE ocps_build_info gauge\nocps_build_info{git_sha=\"";
  escaped(build.git_sha);
  os << "\",compiler=\"";
  escaped(build.compiler);
  os << "\",simd_kernel=\"";
  escaped(build.simd_kernel);
  os << "\"} 1\n";
  os << "# ocps observability compiled out (OCPS_OBS_DISABLED)\n";
}

}  // namespace ocps::obs

#endif  // OCPS_OBS_DISABLED
