#include "core/objectives.hpp"

#include "core/baselines.hpp"
#include "util/check.hpp"

namespace ocps {

DpResult optimize_minimax(const CoRunGroup& group, std::size_t capacity) {
  CostMatrix cost(group.size(), capacity);
  for (std::size_t i = 0; i < group.size(); ++i) {
    double* row = cost.row(i);
    for (std::size_t c = 0; c <= capacity; ++c)
      row[c] = group[i].mrc.ratio(c);
  }
  DpOptions options;
  options.objective = DpObjective::kMaxCost;
  return optimize_partition(cost.view(), capacity, options);
}

DpResult optimize_with_qos(const CoRunGroup& group, CostMatrixView cost,
                           std::size_t capacity,
                           const std::vector<double>& qos_ceiling) {
  OCPS_CHECK(qos_ceiling.size() == group.size(),
             "need one QoS ceiling per member");
  DpOptions options;
  options.min_alloc.resize(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::size_t need = group[i].mrc.min_size_for_ratio(qos_ceiling[i]);
    if (group[i].mrc.ratio(need) > qos_ceiling[i] + 1e-12)
      return DpResult{};  // ceiling unattainable even with the whole cache
    options.min_alloc[i] = need;
  }
  return optimize_partition(cost, capacity, options);
}

double jain_fairness_vs_equal(const CoRunGroup& group,
                              const std::vector<double>& per_program_mr,
                              std::size_t capacity) {
  OCPS_CHECK(per_program_mr.size() == group.size(), "size mismatch");
  auto equal = equal_partition(group.size(), capacity);
  double sum = 0.0, sum_sq = 0.0;
  const std::size_t p = group.size();
  for (std::size_t i = 0; i < p; ++i) {
    double equal_mr = group[i].mrc.ratio(equal[i]);
    // Speedup proxy: how the member's misses compare to its equal-partition
    // misses. Guard the all-hit case.
    double x = (per_program_mr[i] > 0.0)
                   ? equal_mr / per_program_mr[i]
                   : (equal_mr > 0.0 ? 10.0 : 1.0);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(p) * sum_sq);
}

std::size_t count_losers(const std::vector<double>& per_program_mr,
                         const std::vector<double>& baseline_mr,
                         double eps) {
  OCPS_CHECK(per_program_mr.size() == baseline_mr.size(), "size mismatch");
  std::size_t losers = 0;
  for (std::size_t i = 0; i < per_program_mr.size(); ++i)
    if (per_program_mr[i] > baseline_mr[i] + eps) ++losers;
  return losers;
}

}  // namespace ocps
