#include "cachesim/way_partitioned.hpp"

#include <algorithm>
#include <numeric>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

WayPartitionedCache::WayPartitionedCache(std::size_t num_sets,
                                         std::size_t ways,
                                         std::vector<std::size_t> way_quota)
    : sets_(num_sets), ways_(ways), quota_(std::move(way_quota)) {
  OCPS_CHECK(num_sets >= 1 && (num_sets & (num_sets - 1)) == 0,
             "num_sets must be a power of two");
  OCPS_CHECK(ways >= 1, "ways must be >= 1");
  std::size_t total = std::accumulate(quota_.begin(), quota_.end(),
                                      static_cast<std::size_t>(0));
  OCPS_CHECK(total <= ways,
             "way quotas (" << total << ") exceed associativity " << ways);
  lines_.assign(sets_ * ways_, Line{});
  hits_.assign(quota_.size(), 0);
  misses_.assign(quota_.size(), 0);
}

std::size_t WayPartitionedCache::set_index(Block b) const {
  return static_cast<std::size_t>(mix(b)) & (sets_ - 1);
}

bool WayPartitionedCache::access(Block b, std::uint32_t who) {
  OCPS_CHECK(who < quota_.size(), "program " << who << " has no quota");
  OCPS_OBS_COUNT("sim.way_partitioned.accesses", 1);
  ++clock_;
  Line* base = &lines_[set_index(b) * ways_];

  // Hit scan over the whole set (a block resides in its owner's lines).
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.owner == who && line.block == b) {
      line.last_used = clock_;
      ++hits_[who];
      OCPS_OBS_COUNT("sim.way_partitioned.hits", 1);
      return true;
    }
  }
  ++misses_[who];
  if (quota_[who] == 0) return false;  // no ways: bypass

  // Count this program's lines in the set; find its LRU line and any free
  // line.
  std::size_t own = 0;
  Line* own_lru = nullptr;
  Line* free_line = nullptr;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      if (!free_line) free_line = &line;
      continue;
    }
    if (line.owner == who) {
      ++own;
      if (!own_lru || line.last_used < own_lru->last_used) own_lru = &line;
    }
  }
  Line* victim = nullptr;
  if (own >= quota_[who]) {
    victim = own_lru;  // at quota: replace own LRU line
  } else if (free_line) {
    victim = free_line;
  } else {
    // Set full with other programs over... cannot happen when Σ quota <=
    // ways: some program must be under quota only if another is over.
    // Defensive: steal own LRU if any, else drop the fill.
    victim = own_lru;
  }
  if (!victim) return false;
  if (victim->valid) OCPS_OBS_COUNT("sim.way_partitioned.evictions", 1);
  victim->valid = true;
  victim->block = b;
  victim->owner = who;
  victim->last_used = clock_;
  return false;
}

double WayPartitionedCache::miss_ratio(std::uint32_t who) const {
  std::uint64_t total = hits_[who] + misses_[who];
  return total == 0 ? 0.0
                    : static_cast<double>(misses_[who]) /
                          static_cast<double>(total);
}

double WayPartitionedCache::group_miss_ratio() const {
  std::uint64_t h = 0, m = 0;
  for (std::size_t p = 0; p < quota_.size(); ++p) {
    h += hits_[p];
    m += misses_[p];
  }
  return (h + m) == 0 ? 0.0
                      : static_cast<double>(m) / static_cast<double>(h + m);
}

std::vector<std::size_t> ways_from_alloc(const std::vector<std::size_t>& alloc,
                                         std::size_t capacity,
                                         std::size_t total_ways) {
  OCPS_CHECK(!alloc.empty(), "empty allocation");
  OCPS_CHECK(capacity > 0, "capacity must be positive");
  std::vector<double> exact(alloc.size());
  for (std::size_t i = 0; i < alloc.size(); ++i)
    exact[i] = static_cast<double>(alloc[i]) /
               static_cast<double>(capacity) *
               static_cast<double>(total_ways);
  std::vector<std::size_t> ways(alloc.size());
  std::vector<std::pair<double, std::size_t>> rem(alloc.size());
  std::size_t used = 0;
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    ways[i] = static_cast<std::size_t>(exact[i]);
    rem[i] = {exact[i] - static_cast<double>(ways[i]), i};
    used += ways[i];
  }
  std::sort(rem.begin(), rem.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; k < rem.size() && used < total_ways; ++k) {
    ++ways[rem[k].second];
    ++used;
  }
  // Every program with a nonzero unit allocation should get at least one
  // way when the budget allows: steal from the largest holder.
  for (std::size_t i = 0; i < ways.size(); ++i) {
    if (alloc[i] > 0 && ways[i] == 0) {
      std::size_t richest =
          static_cast<std::size_t>(std::max_element(ways.begin(), ways.end()) -
                                   ways.begin());
      if (ways[richest] > 1) {
        --ways[richest];
        ++ways[i];
      }
    }
  }
  return ways;
}

WayPartitionResult simulate_way_partitioned(
    const InterleavedTrace& trace, std::size_t num_sets, std::size_t ways,
    const std::vector<std::size_t>& way_quota, std::size_t warmup) {
  WayPartitionedCache cache(num_sets, ways, way_quota);
  std::vector<std::uint64_t> hits(way_quota.size(), 0);
  std::vector<std::uint64_t> misses(way_quota.size(), 0);
  for (std::size_t t = 0; t < trace.length(); ++t) {
    bool hit = cache.access(trace.blocks[t], trace.owners[t]);
    if (t >= warmup) {
      if (hit) {
        ++hits[trace.owners[t]];
      } else {
        ++misses[trace.owners[t]];
      }
    }
  }
  WayPartitionResult out;
  out.per_program_mr.resize(way_quota.size());
  std::uint64_t th = 0, tm = 0;
  for (std::size_t p = 0; p < way_quota.size(); ++p) {
    std::uint64_t total = hits[p] + misses[p];
    out.per_program_mr[p] =
        total == 0 ? 0.0
                   : static_cast<double>(misses[p]) /
                         static_cast<double>(total);
    th += hits[p];
    tm += misses[p];
  }
  out.group_mr = (th + tm) == 0
                     ? 0.0
                     : static_cast<double>(tm) /
                           static_cast<double>(th + tm);
  return out;
}

}  // namespace ocps
