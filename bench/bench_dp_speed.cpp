// §VII-A cost-of-analysis microbenchmarks: the DP optimizer's O(P·C²)
// scaling and the per-group optimization cost (the paper reports ~0.14 s
// per group for DP including IO, ~0.11 s for STTW on a 1.7 GHz i5), plus
// the end-to-end C(16,4) sweep comparing the batched engine (persistent
// pool + prefix-shared DP) against per-group evaluation. Measured numbers
// are recorded in BENCH_dp_speed.json and docs/performance.md.
#include <benchmark/benchmark.h>

#include "common.hpp"

#include "combinatorics/enumerate.hpp"
#include "core/batch_engine.hpp"
#include "core/dp_kernel.hpp"
#include "core/dp_partition.hpp"
#include "core/group_sweep.hpp"
#include "core/sttw.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace ocps;

CostMatrix make_costs(std::size_t programs, std::size_t capacity,
                      std::uint64_t seed) {
  Rng rng(seed);
  CostMatrix cost(programs, capacity);
  for (std::size_t i = 0; i < programs; ++i) {
    double* row = cost.row(i);
    double v = 1.0;
    for (std::size_t c = 0; c <= capacity; ++c) {
      row[c] = v;
      double step = rng.uniform() * (2.0 / static_cast<double>(capacity));
      if (rng.chance(0.02)) step += rng.uniform() * 0.2;  // cliffs
      v = std::max(0.0, v - step);
    }
  }
  return cost;
}

void BM_DpPartition(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const std::size_t c = static_cast<std::size_t>(state.range(1));
  CostMatrix cost = make_costs(p, c, 42);
  for (auto _ : state) {
    DpResult r = optimize_partition(cost.view(), c);
    benchmark::DoNotOptimize(r.objective_value);
  }
  state.SetComplexityN(static_cast<std::int64_t>(c));
  state.counters["PC^2"] =
      static_cast<double>(p) * static_cast<double>(c) *
      static_cast<double>(c);
}

// Same solve through a warm scratch arena: steady-state allocation-free.
void BM_DpPartitionWarmScratch(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const std::size_t c = static_cast<std::size_t>(state.range(1));
  CostMatrix cost = make_costs(p, c, 42);
  DpScratch scratch;
  optimize_partition(cost.view(), c, {}, scratch);  // warm the arena
  for (auto _ : state) {
    DpResult r = optimize_partition(cost.view(), c, {}, scratch);
    benchmark::DoNotOptimize(r.objective_value);
  }
  state.counters["scratch_grows"] =
      static_cast<double>(scratch.grow_events);
}

void BM_DpWithBounds(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  CostMatrix cost = make_costs(4, c, 43);
  DpOptions opt;
  opt.min_alloc = {c / 16, c / 8, 0, c / 10};
  for (auto _ : state) {
    DpResult r = optimize_partition(cost.view(), c, opt);
    benchmark::DoNotOptimize(r.objective_value);
  }
}

void BM_DpMinimax(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  CostMatrix cost = make_costs(4, c, 44);
  DpOptions opt;
  opt.objective = DpObjective::kMaxCost;
  for (auto _ : state) {
    DpResult r = optimize_partition(cost.view(), c, opt);
    benchmark::DoNotOptimize(r.objective_value);
  }
}

void BM_Sttw(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  CostMatrix cost = make_costs(4, c, 45);
  for (auto _ : state) {
    SttwResult r = sttw_partition(cost.view(), c);
    benchmark::DoNotOptimize(r.objective_value);
  }
}

// One full non-base forward layer (the DP's O(C²) inner recurrence) on a
// fixed kernel — the apples-to-apples scalar vs AVX2 comparison the
// ≥1.5× kernel speedup in BENCH_dp_speed.json is measured on. The prev
// layer is a realistic base-layer output, not a synthetic ramp.
void run_forward_layer_bench(benchmark::State& state, bool avx2) {
  if (avx2 && !dp_detail::cpu_supports_avx2()) {
    state.SkipWithError("CPU lacks AVX2");
    return;
  }
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  CostMatrix cost = make_costs(2, c, 46);
  std::vector<double> prev(c + 1), next(c + 1);
  std::vector<std::uint32_t> choice(c + 1);
  dp_detail::forward_layer_scalar(DpObjective::kSumCost, cost.row(0), 0, c,
                                  0, c, /*prev_is_base=*/true, nullptr,
                                  prev.data(), choice.data());
  auto* kernel = avx2 ? dp_detail::forward_layer_avx2
                      : dp_detail::forward_layer_scalar;
  std::uint64_t cells = 0;
  for (auto _ : state) {
    cells = kernel(DpObjective::kSumCost, cost.row(1), 0, c, 0, c,
                   /*prev_is_base=*/false, prev.data(), next.data(),
                   choice.data());
    benchmark::DoNotOptimize(next.data());
    benchmark::DoNotOptimize(choice.data());
  }
  state.counters["cells"] = static_cast<double>(cells);
}

void BM_ForwardLayerScalar(benchmark::State& state) {
  run_forward_layer_bench(state, false);
}

void BM_ForwardLayerAvx2(benchmark::State& state) {
  run_forward_layer_bench(state, true);
}

// Incremental re-solve cost as a function of where in a 16-program chain
// the profile change lands. Each iteration flips the changed program's
// row between two variants (so its fingerprint really changes), diffs,
// and re-solves: a change at position 15 rebuilds one layer, a change at
// position 1 rebuilds the whole suffix — O(suffix), not O(P).
void BM_IncrementalResolve(benchmark::State& state) {
  const std::size_t pos = static_cast<std::size_t>(state.range(0));
  const std::size_t p = 16, c = 256;
  CostMatrix cost = make_costs(p, c, 47);
  PrefixDpSolver solver;
  solver.configure(cost.view(), c, DpObjective::kSumCost);
  std::vector<std::uint32_t> members(p);
  for (std::size_t i = 0; i < p; ++i)
    members[i] = static_cast<std::uint32_t>(i);
  DpResult out;
  solver.solve(members.data(), p, nullptr, out);  // warm the layer stack

  const std::uint64_t layers0 = solver.stats().layers_computed;
  bool flip = false;
  for (auto _ : state) {
    cost.row(pos)[c / 2] = flip ? 0.123 : 0.456;
    flip = !flip;
    solver.resolve_incremental(cost.view());
    solver.solve(members.data(), p, nullptr, out);
    benchmark::DoNotOptimize(out.objective_value);
  }
  state.counters["layers_rebuilt_per_iter"] =
      static_cast<double>(solver.stats().layers_computed - layers0) /
      static_cast<double>(state.iterations());
}

// The pre-incremental baseline: a full configure() + solve per profile
// change, rebuilding every layer no matter where the change landed.
void BM_IncrementalResolveFullRebuild(benchmark::State& state) {
  const std::size_t p = 16, c = 256;
  CostMatrix cost = make_costs(p, c, 47);
  PrefixDpSolver solver;
  std::vector<std::uint32_t> members(p);
  for (std::size_t i = 0; i < p; ++i)
    members[i] = static_cast<std::uint32_t>(i);
  DpResult out;
  bool flip = false;
  for (auto _ : state) {
    cost.row(15)[c / 2] = flip ? 0.123 : 0.456;
    flip = !flip;
    solver.configure(cost.view(), c, DpObjective::kSumCost);
    solver.solve(members.data(), p, nullptr, out);
    benchmark::DoNotOptimize(out.objective_value);
  }
}

// Synthetic 16-program suite mirroring the Table I setup (C(16,4) = 1820
// four-program groups); traces are short so model building stays cheap.
std::vector<ProgramModel> make_sweep_suite(std::size_t capacity) {
  std::vector<ProgramModel> models;
  const std::size_t n = 30000;
  for (int i = 0; i < 16; ++i) {
    Trace t;
    std::string name = "p" + std::to_string(i);
    switch (i % 4) {
      case 0: t = make_zipf(n, 40 + 11 * i, 0.8 + 0.05 * i, 100 + i); break;
      case 1: t = make_cyclic(n, 24 + 9 * i); break;
      case 2: t = make_hot_cold(n, 6 + i, 60 + 13 * i, 0.8, 200 + i); break;
      default: t = make_sawtooth(n, 30 + 7 * i); break;
    }
    models.push_back(make_program_model(name, 0.5 + 0.1 * i,
                                        compute_footprint(t), capacity + 16));
  }
  return models;
}

// End-to-end sweep through the batched engine: persistent pool across
// groups, prefix-shared DP layers within each thread.
void BM_GroupSweepBatched(benchmark::State& state) {
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  auto models = make_sweep_suite(capacity);
  auto groups = all_subsets(16, 4);
  SweepOptions opt;
  opt.capacity = capacity;
  double check = 0.0;
  for (auto _ : state) {
    auto sweep = sweep_groups(models, groups, opt);
    check = 0.0;
    for (const auto& g : sweep) check += g.of(Method::kOptimal).group_mr;
    benchmark::DoNotOptimize(check);
  }
  state.counters["groups"] = static_cast<double>(groups.size());
  state.counters["checksum"] = check;
}

// The pre-batching evaluation strategy: every group solved independently
// (no layer sharing, no persistent per-thread state). This is the
// baseline the ≥3× speedup in BENCH_dp_speed.json is measured against.
void BM_GroupSweepPerGroup(benchmark::State& state) {
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  auto models = make_sweep_suite(capacity);
  auto groups = all_subsets(16, 4);
  SweepOptions opt;
  opt.capacity = capacity;
  CostMatrix unit_costs = precompute_unit_cost_matrix(models, capacity);
  double check = 0.0;
  for (auto _ : state) {
    check = 0.0;
    for (const auto& members : groups) {
      GroupEvaluation g =
          evaluate_group(models, unit_costs.view(), members, opt);
      check += g.of(Method::kOptimal).group_mr;
    }
    benchmark::DoNotOptimize(check);
  }
  state.counters["groups"] = static_cast<double>(groups.size());
  state.counters["checksum"] = check;
}

}  // namespace

// The paper's configuration is P=4, C=1024; the sweep shows the quadratic
// growth in C and linear growth in P.
BENCHMARK(BM_DpPartition)
    ->Args({4, 128})
    ->Args({4, 256})
    ->Args({4, 512})
    ->Args({4, 1024})
    ->Args({2, 1024})
    ->Args({8, 1024})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpPartitionWarmScratch)
    ->Args({4, 1024})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpWithBounds)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpMinimax)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sttw)->Arg(1024)->Arg(131072)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForwardLayerScalar)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForwardLayerAvx2)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalResolve)
    ->Arg(1)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalResolveFullRebuild)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupSweepBatched)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_GroupSweepPerGroup)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Custom main (instead of BENCHMARK_MAIN) so the observability snapshot
// is emitted like every other bench binary when OCPS_OBS is on.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  ocps::bench::emit_metrics_snapshot_if_enabled();
  return 0;
}
