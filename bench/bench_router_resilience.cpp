// Router resilience bench: a 3-backend fleet behind an in-process
// `Router`, driven by closed-loop clients while the harness injects
// socket-layer chaos at every backend and kills + restarts one backend
// mid-load.
//
// Phases:
//   steady   chaos only (resets, trickles, stalls on backend responses)
//   outage   one backend is stopped mid-load, then restarted; the prober
//            must eject it (breaker open) and readmit it (closed) while
//            clients keep getting answers from the survivors
//
// Sanity anchors, checked at exit (non-zero exit on violation):
//  * zero wrong answers: every ok response echoes the request id and
//    carries an alloc whose blocks sum to <= capacity;
//  * every non-ok outcome is a clean, classified status (429/502/503/504
//    or an explicit transport error after retries) — never a truncated
//    or corrupt response line;
//  * availability stays >= 98% in both phases (retries + failover hide
//    the outage);
//  * the victim's breaker was observed open during the outage and closed
//    again after the restart.
//
// Environment knobs:
//   OCPS_ROUTER_REQUESTS  requests per phase per worker (default 150)
//   OCPS_THREADS          solver width inside the daemons
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common.hpp"
#include "core/program_model.hpp"
#include "runtime/fault_injection.hpp"
#include "serve/client.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

namespace {

constexpr std::size_t kCapacity = 256;
constexpr std::size_t kBackends = 3;
constexpr std::size_t kWorkers = 4;

std::vector<ProgramModel> make_models() {
  std::vector<ProgramModel> models;
  const std::size_t n = 60000;
  for (std::size_t i = 0; i < 8; ++i) {
    Trace t;
    switch (i % 4) {
      case 0: t = make_cyclic(n, 40 + 11 * i); break;
      case 1: t = make_zipf(n, 120 + 17 * i, 0.85, 300 + i); break;
      case 2: t = make_hot_cold(n, 6 + i, 90 + 13 * i, 0.8, 400 + i); break;
      default: t = make_sawtooth(n, 24 + 7 * i); break;
    }
    models.push_back(make_program_model("prog" + std::to_string(i),
                                        0.5 + 0.2 * i, compute_footprint(t),
                                        kCapacity));
  }
  return models;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::string sock_path(const std::string& tag) {
  return "/tmp/ocps_bench_router_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

struct WorkerResult {
  std::size_t ok = 0;
  std::size_t clean_errors = 0;  ///< classified 429/502/503/504
  std::size_t transport_errors = 0;
  std::size_t wrong_answers = 0;  ///< corrupt alloc / wrong id echo
  std::vector<double> latencies_ms;
};

/// Closed loop through the router with the hardened client: retries with
/// jittered backoff, the request deadline as the budget.
void run_worker(const std::string& router_sock, std::size_t worker,
                std::size_t count, WorkerResult* out) {
  Result<serve::Client> client = serve::Client::connect(router_sock);
  if (!client.ok()) {
    out->transport_errors = count;
    return;
  }
  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.seed = 0xB0FF + worker;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull * (worker + 1);
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::size_t>(lcg >> 33);
  };
  out->latencies_ms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    serve::Request req;
    req.id = static_cast<std::int64_t>(worker * 1000000 + i + 1);
    req.op = serve::Op::kPartition;
    req.deadline_ms = 3000.0;
    std::size_t members = 2 + next() % 3;
    std::size_t first = next() % 8;
    for (std::size_t m = 0; m < members; ++m)
      req.programs.push_back("prog" +
                             std::to_string((first + m * 3) % 8));
    req.capacity = kCapacity;

    auto start = std::chrono::steady_clock::now();
    Result<serve::Response> r = client.value().call_with_retry(req, policy);
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (!r.ok()) {
      // Transport failure after every retry: drop and reconnect so the
      // rest of the loop is not doomed by one dead connection.
      ++out->transport_errors;
      Result<serve::Client> fresh = serve::Client::connect(router_sock);
      if (fresh.ok()) client.value() = std::move(fresh.value());
      continue;
    }
    const serve::Response& resp = r.value();
    if (!resp.ok) {
      if (resp.code == 429 || resp.code == 502 || resp.code == 503 ||
          resp.code == 504) {
        ++out->clean_errors;
      } else {
        ++out->wrong_answers;  // unclassified failure = protocol bug
      }
      continue;
    }
    // A wrong answer is worse than no answer: check the invariants the
    // DP guarantees (id echo, one alloc per program, capacity respected).
    const json::Value* alloc = resp.body.find("alloc");
    bool sane = resp.id == req.id && alloc != nullptr;
    if (sane) {
      double total = 0.0;
      const json::Array& blocks = alloc->as_array();
      for (const json::Value& v : blocks) total += v.as_number();
      sane = blocks.size() == req.programs.size() &&
             total <= static_cast<double>(kCapacity) + 0.5;
    }
    if (!sane) {
      ++out->wrong_answers;
      continue;
    }
    ++out->ok;
    out->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double idx = p * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct PhaseStats {
  std::size_t requests = 0, ok = 0, clean = 0, transport = 0, wrong = 0;
  double p50 = 0.0, p99 = 0.0;
};

PhaseStats run_phase(const std::string& router_sock, std::size_t per_worker,
                     const std::function<void()>& mid_phase) {
  std::vector<WorkerResult> results(kWorkers);
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w)
    workers.emplace_back(run_worker, router_sock, w, per_worker,
                         &results[w]);
  if (mid_phase) mid_phase();
  for (std::thread& t : workers) t.join();

  PhaseStats stats;
  std::vector<double> all;
  for (const WorkerResult& r : results) {
    stats.ok += r.ok;
    stats.clean += r.clean_errors;
    stats.transport += r.transport_errors;
    stats.wrong += r.wrong_answers;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  stats.requests = kWorkers * per_worker;
  std::sort(all.begin(), all.end());
  stats.p50 = percentile(all, 0.50);
  stats.p99 = percentile(all, 0.99);
  return stats;
}

}  // namespace

int main() {
  const std::size_t per_worker = env_size("OCPS_ROUTER_REQUESTS", 150);
  std::vector<ProgramModel> models = make_models();

  // Backend chaos: pacing faults are common, hard resets rarer — the
  // router must absorb all of them without surfacing a corrupt answer.
  NetFaultConfig chaos_cfg;
  chaos_cfg.reset_rate = 0.02;
  chaos_cfg.trickle_rate = 0.05;
  chaos_cfg.stall_rate = 0.05;
  chaos_cfg.stall = std::chrono::milliseconds(10);
  chaos_cfg.seed = 0x5EAFA117;
  NetFaultInjector chaos(chaos_cfg);

  std::vector<serve::ServeConfig> backend_cfgs;
  std::vector<std::unique_ptr<serve::Server>> backends;
  for (std::size_t i = 0; i < kBackends; ++i) {
    serve::ServeConfig cfg;
    cfg.socket_path = sock_path("b" + std::to_string(i));
    cfg.capacity = kCapacity;
    cfg.net_faults = &chaos;
    backend_cfgs.push_back(cfg);
    backends.push_back(std::make_unique<serve::Server>(cfg, models));
    if (!backends.back()->start().ok()) {
      std::cerr << "FAIL: backend " << i << " did not start\n";
      return 1;
    }
  }

  serve::RouterConfig rcfg;
  rcfg.socket_path = sock_path("front");
  for (const auto& cfg : backend_cfgs) rcfg.backends.push_back(cfg.socket_path);
  rcfg.breaker.failure_threshold = 3;
  rcfg.breaker.cooldown = std::chrono::milliseconds(300);
  rcfg.health_interval = std::chrono::milliseconds(100);
  rcfg.connect_timeout = std::chrono::milliseconds(500);
  serve::Router router(rcfg);
  if (!router.start().ok()) {
    std::cerr << "FAIL: router did not start\n";
    return 1;
  }

  TextTable table({"phase", "requests", "ok", "clean_err", "transport",
                   "wrong", "p50_ms", "p99_ms"});

  PhaseStats steady = run_phase(rcfg.socket_path, per_worker, nullptr);
  table.add_row({"steady_chaos", std::to_string(steady.requests),
                 std::to_string(steady.ok), std::to_string(steady.clean),
                 std::to_string(steady.transport),
                 std::to_string(steady.wrong), TextTable::num(steady.p50, 3),
                 TextTable::num(steady.p99, 3)});

  // Outage phase: kill backend 0 shortly into the load, restart it a
  // moment later; record whether the breaker was seen open.
  constexpr std::size_t kVictim = 0;
  std::atomic<bool> saw_open{false};
  auto outage = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    backends[kVictim]->request_stop();
    backends[kVictim]->stop();
    backends[kVictim].reset();
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (router.breaker_state(kVictim) ==
          serve::CircuitBreaker::State::kOpen) {
        saw_open.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    backends[kVictim] =
        std::make_unique<serve::Server>(backend_cfgs[kVictim], models);
    if (!backends[kVictim]->start().ok())
      std::cerr << "FAIL: victim restart failed\n";
  };
  PhaseStats outage_stats = run_phase(rcfg.socket_path, per_worker, outage);
  table.add_row(
      {"kill_restart", std::to_string(outage_stats.requests),
       std::to_string(outage_stats.ok), std::to_string(outage_stats.clean),
       std::to_string(outage_stats.transport),
       std::to_string(outage_stats.wrong),
       TextTable::num(outage_stats.p50, 3),
       TextTable::num(outage_stats.p99, 3)});
  std::cout << "\nrouter resilience (" << kBackends << " backends, "
            << kWorkers << " closed-loop clients, chaos armed):\n\n";
  table.print(std::cout);
  std::cout << "\n";
  std::cout << "chaos injected: " << chaos.injected_resets() << " resets, "
            << chaos.injected_trickles() << " trickles, "
            << chaos.injected_stalls() << " stalls\n";
  serve::Router::Counters rc = router.counters();
  std::cout << "router: " << rc.forwarded << " forwarded, " << rc.failovers
            << " failovers, " << rc.no_backend << " no-backend, "
            << rc.all_open << " all-open\n";

  // The breaker must readmit the restarted victim before we call it done.
  bool reclosed = false;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.breaker_state(kVictim) ==
        serve::CircuitBreaker::State::kClosed) {
      reclosed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  router.stop();
  for (auto& b : backends)
    if (b) {
      b->request_stop();
      b->stop();
    }

  bool failed = false;
  auto check = [&](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "ANCHOR VIOLATED: " << what << "\n";
      failed = true;
    }
  };
  check(steady.wrong == 0 && outage_stats.wrong == 0,
        "wrong or corrupt answers observed");
  auto availability = [](const PhaseStats& s) {
    return static_cast<double>(s.ok) /
           static_cast<double>(std::max<std::size_t>(1, s.requests));
  };
  check(availability(steady) >= 0.98, "steady-phase availability < 98%");
  check(availability(outage_stats) >= 0.98,
        "outage-phase availability < 98%");
  check(saw_open.load(), "victim breaker never opened during the outage");
  check(reclosed, "victim breaker never re-closed after restart");
  check(chaos.injected_total() > 0, "chaos injector never fired");
  if (failed) {
    std::cerr << "FAIL: router resilience anchors violated\n";
    return 1;
  }
  std::cout << "all resilience anchors hold\n";
  return 0;
}
