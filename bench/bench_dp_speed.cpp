// §VII-A cost-of-analysis microbenchmarks: the DP optimizer's O(P·C²)
// scaling and the per-group optimization cost (the paper reports ~0.14 s
// per group for DP including IO, ~0.11 s for STTW on a 1.7 GHz i5).
#include <benchmark/benchmark.h>

#include "common.hpp"

#include "core/dp_partition.hpp"
#include "core/sttw.hpp"
#include "util/rng.hpp"

namespace {

using namespace ocps;

std::vector<std::vector<double>> make_costs(std::size_t programs,
                                            std::size_t capacity,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cost(programs);
  for (auto& row : cost) {
    row.resize(capacity + 1);
    double v = 1.0;
    for (std::size_t c = 0; c <= capacity; ++c) {
      row[c] = v;
      double step = rng.uniform() * (2.0 / static_cast<double>(capacity));
      if (rng.chance(0.02)) step += rng.uniform() * 0.2;  // cliffs
      v = std::max(0.0, v - step);
    }
  }
  return cost;
}

void BM_DpPartition(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const std::size_t c = static_cast<std::size_t>(state.range(1));
  auto cost = make_costs(p, c, 42);
  for (auto _ : state) {
    DpResult r = optimize_partition(cost, c);
    benchmark::DoNotOptimize(r.objective_value);
  }
  state.SetComplexityN(static_cast<std::int64_t>(c));
  state.counters["PC^2"] =
      static_cast<double>(p) * static_cast<double>(c) *
      static_cast<double>(c);
}

void BM_DpWithBounds(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  auto cost = make_costs(4, c, 43);
  DpOptions opt;
  opt.min_alloc = {c / 16, c / 8, 0, c / 10};
  for (auto _ : state) {
    DpResult r = optimize_partition(cost, c, opt);
    benchmark::DoNotOptimize(r.objective_value);
  }
}

void BM_DpMinimax(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  auto cost = make_costs(4, c, 44);
  DpOptions opt;
  opt.objective = DpObjective::kMaxCost;
  for (auto _ : state) {
    DpResult r = optimize_partition(cost, c, opt);
    benchmark::DoNotOptimize(r.objective_value);
  }
}

void BM_Sttw(benchmark::State& state) {
  const std::size_t c = static_cast<std::size_t>(state.range(0));
  auto cost = make_costs(4, c, 45);
  for (auto _ : state) {
    SttwResult r = sttw_partition(cost, c);
    benchmark::DoNotOptimize(r.objective_value);
  }
}

}  // namespace

// The paper's configuration is P=4, C=1024; the sweep shows the quadratic
// growth in C and linear growth in P.
BENCHMARK(BM_DpPartition)
    ->Args({4, 128})
    ->Args({4, 256})
    ->Args({4, 512})
    ->Args({4, 1024})
    ->Args({2, 1024})
    ->Args({8, 1024})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpWithBounds)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DpMinimax)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sttw)->Arg(1024)->Arg(131072)->Unit(benchmark::kMillisecond);

// Custom main (instead of BENCHMARK_MAIN) so the observability snapshot
// is emitted like every other bench binary when OCPS_OBS is on.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  ocps::bench::emit_metrics_snapshot_if_enabled();
  return 0;
}
