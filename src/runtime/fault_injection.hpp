// Deterministic fault injection for the online controller.
//
// Reproducing a production failure ("the profiler sent us garbage at
// 3am") requires faults that are a pure function of (seed, epoch,
// program) — not of call order — so a hardened run and a baseline run
// given the same injector config see *exactly* the same faults. Every
// decision here hashes (seed, epoch, program, kind) with splitmix64 and
// compares against the configured rate; no mutable RNG stream exists.
//
// Fault kinds mirror what real sampled profilers produce under stress:
//   * nan       — a run of NaN entries (arithmetic on an empty sample)
//   * spike     — a burst above 1.0 breaking monotonicity (hash
//                 collisions on a tiny sample)
//   * truncate  — the estimate stops early (dropped profiler message)
//   * drop      — no estimate at all for one (epoch, program)
//   * dp_fail   — the optimizer itself errors for one epoch
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "runtime/controller.hpp"

namespace ocps {

/// Per-kind fault probabilities (each in [0, 1]) and the seed that makes
/// the injection schedule deterministic.
struct FaultInjectionConfig {
  double nan_rate = 0.0;       ///< P[NaN-lace an estimate]
  double spike_rate = 0.0;     ///< P[spike an estimate above 1]
  double truncate_rate = 0.0;  ///< P[truncate an estimate]
  double drop_rate = 0.0;      ///< P[drop an estimate entirely]
  double dp_fail_rate = 0.0;   ///< P[fail the DP for an epoch]
  std::uint64_t seed = 0xFA117;

  /// Convenience: every kind at the same rate r.
  static FaultInjectionConfig uniform(double r, std::uint64_t seed = 0xFA117);
};

/// Seeded injector producing ControllerHooks. The injector outlives the
/// controller run (hooks hold a pointer to it); it also tallies what it
/// injected so benches can report the realized fault load.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectionConfig& config);

  /// Hooks to pass to run_online_controller. The injector must stay
  /// alive for the duration of the run.
  ControllerHooks hooks();

  /// Faults injected so far, by kind and in total.
  std::size_t injected_nan() const { return nan_; }
  std::size_t injected_spikes() const { return spikes_; }
  std::size_t injected_truncations() const { return truncations_; }
  std::size_t injected_drops() const { return drops_; }
  std::size_t injected_dp_failures() const { return dp_failures_; }
  std::size_t injected_total() const {
    return nan_ + spikes_ + truncations_ + drops_ + dp_failures_;
  }

  /// Resets the tally (the schedule is stateless and unaffected).
  void reset_counts();

  // Hook bodies (public so tests can drive them directly).
  void corrupt_mrc(std::size_t epoch, std::size_t program,
                   std::vector<double>& ratios);
  bool drop_estimate(std::size_t epoch, std::size_t program);
  bool fail_dp(std::size_t epoch);

 private:
  /// Uniform [0,1) draw that is a pure function of the identifiers.
  double draw(std::uint64_t kind, std::size_t epoch,
              std::size_t program) const;

  FaultInjectionConfig config_;
  std::size_t nan_ = 0;
  std::size_t spikes_ = 0;
  std::size_t truncations_ = 0;
  std::size_t drops_ = 0;
  std::size_t dp_failures_ = 0;
};

// ---------------------------------------------------------------------------
// Socket-layer fault injection for the serving plane.
//
// The controller injector above corrupts *data*; this one corrupts the
// *network*. It models what a fleet actually sees between a router and
// its backend daemons:
//   * accept_fail — the daemon accepts and immediately drops the
//                   connection (fd exhaustion, overload kill)
//   * reset       — the response is cut mid-line and the connection
//                   torn down (peer crash, middlebox reset)
//   * trickle     — the response dribbles out a byte at a time (a slow
//                   or congested peer exercising partial-read paths)
//   * stall       — the daemon holds the response past the deadline (GC
//                   pause, overloaded box) before answering normally
//
// Determinism: sockets have no (epoch, program) identity, so each
// decision is a pure function of (seed, kind, sequence number), with the
// sequence number a per-kind atomic counter. Two runs performing the
// same Nth accept / Nth response see exactly the same fault, which is
// what the chaos harness and the retry tests rely on.

/// Per-kind socket fault probabilities (each in [0, 1]) and the seed
/// that makes the schedule deterministic.
struct NetFaultConfig {
  double accept_fail_rate = 0.0;  ///< P[drop a freshly accepted conn]
  double reset_rate = 0.0;        ///< P[cut a response mid-line]
  double trickle_rate = 0.0;      ///< P[write a response byte-by-byte]
  double stall_rate = 0.0;        ///< P[delay a response by `stall`]
  std::chrono::milliseconds stall{40};  ///< stall duration when injected
  std::uint64_t seed = 0x5EAFA117;

  /// Convenience: every kind at the same rate r.
  static NetFaultConfig uniform(double r, std::uint64_t seed = 0x5EAFA117);
};

/// Seeded socket-fault injector. Thread-safe: the accept loop and every
/// writer thread may consult it concurrently; sequence numbers and
/// tallies are atomics. The server consults it through a const pointer
/// in ServeConfig, so production builds pay one branch when unset.
class NetFaultInjector {
 public:
  /// What to do to the response currently being written. At most one
  /// fault is injected per response; reset wins over trickle over stall.
  enum class WriteFault { kNone, kReset, kTrickle, kStall };

  explicit NetFaultInjector(const NetFaultConfig& config);

  /// Decide the fate of the next accepted connection / written response.
  /// Mutable tallies only; the decision itself is a pure function of
  /// (seed, kind, sequence).
  bool fail_accept() const;
  WriteFault write_fault() const;

  std::chrono::milliseconds stall_duration() const { return config_.stall; }
  const NetFaultConfig& config() const { return config_; }

  /// Faults injected so far, by kind and in total.
  std::size_t injected_accept_failures() const { return accept_failures_; }
  std::size_t injected_resets() const { return resets_; }
  std::size_t injected_trickles() const { return trickles_; }
  std::size_t injected_stalls() const { return stalls_; }
  std::size_t injected_total() const {
    return accept_failures_ + resets_ + trickles_ + stalls_;
  }

 private:
  /// Uniform [0,1) draw that is a pure function of (seed, kind, seq).
  double draw(std::uint64_t kind, std::uint64_t seq) const;

  NetFaultConfig config_;
  mutable std::atomic<std::uint64_t> accept_seq_{0};
  mutable std::atomic<std::uint64_t> write_seq_{0};
  mutable std::atomic<std::size_t> accept_failures_{0};
  mutable std::atomic<std::size_t> resets_{0};
  mutable std::atomic<std::size_t> trickles_{0};
  mutable std::atomic<std::size_t> stalls_{0};
};

}  // namespace ocps
