file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_hotl.dir/bench_validation_hotl.cpp.o"
  "CMakeFiles/bench_validation_hotl.dir/bench_validation_hotl.cpp.o.d"
  "bench_validation_hotl"
  "bench_validation_hotl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_hotl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
