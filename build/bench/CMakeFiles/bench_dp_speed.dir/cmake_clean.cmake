file(REMOVE_RECURSE
  "CMakeFiles/bench_dp_speed.dir/bench_dp_speed.cpp.o"
  "CMakeFiles/bench_dp_speed.dir/bench_dp_speed.cpp.o.d"
  "bench_dp_speed"
  "bench_dp_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
