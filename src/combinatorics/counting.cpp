#include "combinatorics/counting.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ocps {

namespace {

using u128 = unsigned __int128;
constexpr u128 kU128Max = ~static_cast<u128>(0);

// Multiplies with overflow detection.
std::optional<u128> mul_checked(u128 a, u128 b) {
  if (a == 0 || b == 0) return static_cast<u128>(0);
  if (a > kU128Max / b) return std::nullopt;
  return a * b;
}

std::optional<u128> add_checked(u128 a, u128 b) {
  if (a > kU128Max - b) return std::nullopt;
  return a + b;
}

}  // namespace

std::optional<unsigned __int128> binomial128(std::uint64_t n, std::uint64_t k) {
  if (k > n) return static_cast<u128>(0);
  k = std::min<std::uint64_t>(k, n - k);
  u128 result = 1;
  // Multiply then divide step-by-step; C(n, i) is always integral so the
  // division by (i+1) after multiplying by (n-k+i+1) is exact.
  for (std::uint64_t i = 0; i < k; ++i) {
    auto prod = mul_checked(result, static_cast<u128>(n - k + i + 1));
    if (!prod) return std::nullopt;
    result = *prod / static_cast<u128>(i + 1);
  }
  return result;
}

double binomial_double(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  k = std::min<std::uint64_t>(k, n - k);
  double result = 1.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - k + i + 1);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

std::optional<unsigned __int128> stirling2_128(std::uint64_t n,
                                               std::uint64_t k) {
  if (k > n) return static_cast<u128>(0);
  if (n == 0) return static_cast<u128>(1);  // {0 \atop 0} = 1
  if (k == 0) return static_cast<u128>(0);
  // Triangular recurrence { n \atop k } = k { n-1 \atop k } + { n-1 \atop k-1 }.
  std::vector<u128> row(k + 1, 0);
  row[0] = 1;  // row for n = 0
  for (std::uint64_t i = 1; i <= n; ++i) {
    std::uint64_t hi = std::min<std::uint64_t>(i, k);
    for (std::uint64_t j = hi; j >= 1; --j) {
      auto scaled = mul_checked(static_cast<u128>(j), row[j]);
      if (!scaled) return std::nullopt;
      auto sum = add_checked(*scaled, row[j - 1]);
      if (!sum) return std::nullopt;
      row[j] = *sum;
    }
    row[0] = 0;  // {i \atop 0} = 0 for i >= 1
  }
  return row[k];
}

double stirling2_double(std::uint64_t n, std::uint64_t k) {
  auto exact = stirling2_128(n, k);
  if (exact) {
    // u128 → double conversion is fine for our magnitudes.
    return static_cast<double>(*exact);
  }
  // Overflow: recompute in doubles (loses precision but keeps magnitude).
  if (k > n) return 0.0;
  std::vector<double> row(k + 1, 0.0);
  row[0] = 1.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    std::uint64_t hi = std::min<std::uint64_t>(i, k);
    for (std::uint64_t j = hi; j >= 1; --j)
      row[j] = static_cast<double>(j) * row[j] + row[j - 1];
    row[0] = 0.0;
  }
  return row[k];
}

std::string to_string_u128(unsigned __int128 v) {
  if (v == 0) return "0";
  std::string digits;
  while (v > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  return std::string(digits.rbegin(), digits.rend());
}

std::optional<unsigned __int128> search_space_sharing(std::uint64_t npr,
                                                      std::uint64_t nc) {
  return stirling2_128(npr, nc);
}

std::optional<unsigned __int128> search_space_partition_sharing(
    std::uint64_t npr, std::uint64_t cache_units) {
  u128 total = 0;
  for (std::uint64_t npa = 1; npa <= npr; ++npa) {
    auto groups = stirling2_128(npr, npa);
    auto walls = binomial128(cache_units + npa - 1, npa - 1);
    if (!groups || !walls) return std::nullopt;
    auto term = mul_checked(*groups, *walls);
    if (!term) return std::nullopt;
    auto sum = add_checked(total, *term);
    if (!sum) return std::nullopt;
    total = *sum;
  }
  return total;
}

std::optional<unsigned __int128> search_space_partitioning(
    std::uint64_t npr, std::uint64_t cache_units) {
  OCPS_CHECK(npr >= 1, "need at least one program");
  return binomial128(cache_units + npr - 1, npr - 1);
}

}  // namespace ocps
