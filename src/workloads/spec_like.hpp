// The 16-program synthetic SPEC CPU2006 stand-in suite (§VII-A).
//
// The paper profiles 16 SPEC programs (perlbench, bzip2, mcf, zeusmp, namd,
// dealII, soplex, povray, hmmer, sjeng, h264ref, tonto, lbm, omnetpp, wrf,
// sphinx3) and evaluates all C(16,4) = 1820 co-run groups. We cannot ship
// SPEC traces, so each name maps to a deterministic synthetic generator
// reproducing that program's *locality class* — the property the results
// actually depend on:
//
//   * gradually-decreasing large-footprint MRCs with high access rates
//     (lbm, sphinx3, omnetpp): programs that gain from sharing,
//   * small/medium working sets with lower rates (perlbench, sjeng, namd,
//     povray): programs that lose from sharing,
//   * cliffed, non-convex MRCs (mcf, soplex, zeusmp, wrf): the cases that
//     break STTW's convexity assumption,
//   * low-miss-ratio programs that still gain (hmmer, tonto), matching the
//     paper's observation that the gain/loss split is not a pure
//     miss-ratio ordering.
//
// See DESIGN.md §1 for the substitution argument.
#pragma once

#include <string>
#include <vector>

#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace ocps {

/// Specification of one synthetic program.
struct WorkloadSpec {
  std::string name;
  double access_rate = 1.0;  ///< relative accesses per unit time
  /// Deterministic trace generator; `length` is the number of accesses.
  Trace generate(std::size_t length) const;

  /// Generator recipe (exposed so tests can reason about shapes).
  enum class Kind {
    kCyclic,       ///< param0 = wss
    kSawtooth,     ///< param0 = wss
    kZipf,         ///< param0 = blocks, fparam = alpha
    kUniform,      ///< param0 = blocks
    kHotCold,      ///< param0 = hot blocks, param1 = cold blocks,
                   ///  fparam = hot fraction
    kPhased,       ///< param0..2 = per-phase wss (phase length = length/12)
    kScanMix,      ///< param0 = hot blocks, fparam = hot Zipf alpha
                   ///  (0 = uniform), scans = background scan components
  };
  Kind kind = Kind::kZipf;
  std::size_t param0 = 0;
  std::size_t param1 = 0;
  double fparam = 1.0;
  std::uint64_t seed = 0;
  std::vector<ScanComponent> scans;  ///< used by kScanMix
};

/// The 16-program suite, in the paper's listing order.
const std::vector<WorkloadSpec>& spec2006_suite();

/// Looks a program up by name; throws CheckError when absent.
const WorkloadSpec& find_workload(const std::string& name);

}  // namespace ocps
