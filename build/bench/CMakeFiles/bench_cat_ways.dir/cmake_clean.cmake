file(REMOVE_RECURSE
  "CMakeFiles/bench_cat_ways.dir/bench_cat_ways.cpp.o"
  "CMakeFiles/bench_cat_ways.dir/bench_cat_ways.cpp.o.d"
  "bench_cat_ways"
  "bench_cat_ways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cat_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
