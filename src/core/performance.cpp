#include "core/performance.hpp"

#include "util/check.hpp"

namespace ocps {

PerfMetrics performance_metrics(const CoRunGroup& group,
                                const std::vector<double>& per_program_mr,
                                std::size_t capacity,
                                const LatencyModel& model) {
  OCPS_CHECK(per_program_mr.size() == group.size(), "size mismatch");
  OCPS_CHECK(model.hit_cost > 0.0, "hit cost must be positive");
  PerfMetrics out;
  out.slowdown.resize(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    double solo = model.cpa(group[i].mrc.ratio(capacity));
    double now = model.cpa(per_program_mr[i]);
    out.slowdown[i] = now / solo;
    out.antt += out.slowdown[i];
    out.stp += solo / now;
  }
  out.antt /= static_cast<double>(group.size());
  out.weighted_speedup = out.stp / static_cast<double>(group.size());
  return out;
}

std::vector<std::vector<double>> slowdown_cost_curves(
    const CoRunGroup& group, std::size_t capacity,
    const LatencyModel& model) {
  std::vector<std::vector<double>> cost(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    double solo = model.cpa(group[i].mrc.ratio(capacity));
    cost[i].resize(capacity + 1);
    for (std::size_t c = 0; c <= capacity; ++c)
      cost[i][c] = model.cpa(group[i].mrc.ratio(c)) / solo;
  }
  return cost;
}

}  // namespace ocps
