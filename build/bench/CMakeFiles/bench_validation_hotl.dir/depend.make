# Empty dependencies file for bench_validation_hotl.
# This may be replaced when dependencies are built.
