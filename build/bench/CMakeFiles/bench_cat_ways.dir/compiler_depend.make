# Empty compiler generated dependencies file for bench_cat_ways.
# This may be replaced when dependencies are built.
