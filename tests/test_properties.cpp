// Cross-module property and failure-injection tests: invariants the
// theory guarantees and robustness of the IO/optimizer layers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cachesim/belady.hpp"
#include "cachesim/lru.hpp"
#include "cachesim/policies.hpp"
#include "core/dp_partition.hpp"
#include "core/partition_sharing.hpp"
#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "locality/hotl.hpp"
#include "sched/symbiosis.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps {
namespace {

// ---- Footprint concavity -------------------------------------------------
// Xiang et al. show the average footprint is concave in the window
// length; concavity is what makes the derived miss ratio non-increasing
// and the fill time well-defined. For finite traces the window-boundary
// terms perturb this by O(m/n) dust, so the property is asserted within a
// small absolute tolerance rather than exactly.
class FootprintConcavity : public ::testing::TestWithParam<int> {};

TEST_P(FootprintConcavity, SecondDifferencesNonPositive) {
  Trace t;
  switch (GetParam()) {
    case 0: t = make_zipf(20000, 200, 1.0, 301); break;
    case 1: t = make_uniform(20000, 150, 302); break;
    case 2: t = make_cyclic(20000, 120); break;
    case 3: t = make_sawtooth(20000, 90); break;
    case 4: t = make_hot_cold(20000, 15, 200, 0.7, 303); break;
    case 5: t = make_scan_mix(20000, 40, 0.8, {{100, 0.1}}, 304); break;
    default: FAIL();
  }
  FootprintCurve fp = compute_footprint(t);
  const double tolerance =
      1e-3 * static_cast<double>(fp.distinct) /
          static_cast<double>(std::max<std::uint64_t>(fp.trace_length, 1)) +
      1e-6;
  for (std::size_t w = 2; w < fp.fp.size(); ++w) {
    double second = fp.fp[w] - 2.0 * fp.fp[w - 1] + fp.fp[w - 2];
    ASSERT_LE(second, std::max(tolerance, 5e-5)) << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FootprintConcavity, ::testing::Range(0, 6));

// ---- OPT lower-bounds every policy ---------------------------------------
class OptIsLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(OptIsLowerBound, BeladyNeverWorseThanAnyPolicy) {
  Rng rng(400 + static_cast<std::uint64_t>(GetParam()));
  Trace t;
  switch (GetParam() % 3) {
    case 0: t = make_zipf(20000, 250, 0.9, rng.next()); break;
    case 1: t = make_hot_cold(20000, 20, 250, 0.75, rng.next()); break;
    default: t = make_uniform(20000, 220, rng.next()); break;
  }
  std::size_t c = 32 + rng.below(150);
  double opt = simulate_belady(t, c).miss_ratio();
  LruCache lru(c);
  for (Block b : t.accesses) lru.access(b);
  EXPECT_LE(opt, lru.miss_ratio() + 1e-12);
  for (Policy p : {Policy::kFifo, Policy::kRandom, Policy::kClock})
    EXPECT_LE(opt, policy_miss_ratio(p, t, c) + 1e-12) << policy_name(p);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptIsLowerBound, ::testing::Range(0, 6));

// ---- Scheduling dominance -------------------------------------------------
TEST(SchedulingDominance, PartitionedCachesNeverLoseToSharedCaches) {
  // The reduction theorem, machine-wide: optimally partitioning each
  // cache upper-bounds free-for-all sharing of each cache, for every
  // grouping — so the partitioned schedule optimum dominates the shared
  // schedule optimum.
  std::vector<ProgramModel> models;
  models.push_back(make_program_model(
      "a", 1.0, compute_footprint(make_zipf(20000, 120, 1.0, 311)), 80));
  models.push_back(make_program_model(
      "b", 1.5, compute_footprint(make_cyclic(20000, 60)), 80));
  models.push_back(make_program_model(
      "c", 0.8, compute_footprint(make_sawtooth(20000, 25)), 80));
  models.push_back(make_program_model(
      "d", 1.2, compute_footprint(make_hot_cold(20000, 10, 90, 0.7, 312)),
      80));
  std::vector<const ProgramModel*> ptrs;
  for (const auto& m : models) ptrs.push_back(&m);

  for (std::size_t caches : {1u, 2u}) {
    Schedule shared = best_schedule_exhaustive(ptrs, caches, 80);
    Schedule part = best_schedule_partitioned(ptrs, caches, 80);
    EXPECT_LE(part.overall_mr, shared.overall_mr + 1e-9)
        << caches << " caches";
  }
}

TEST(SchedulingDominance, MoreCachesNeverHurtPartitioned) {
  std::vector<ProgramModel> models;
  models.push_back(make_program_model(
      "a", 1.0, compute_footprint(make_cyclic(15000, 70)), 80));
  models.push_back(make_program_model(
      "b", 1.0, compute_footprint(make_cyclic(15000, 70)), 80));
  models.push_back(make_program_model(
      "c", 1.0, compute_footprint(make_sawtooth(15000, 12)), 80));
  std::vector<const ProgramModel*> ptrs;
  for (const auto& m : models) ptrs.push_back(&m);
  Schedule one = best_schedule_partitioned(ptrs, 1, 80);
  Schedule two = best_schedule_partitioned(ptrs, 2, 80);
  EXPECT_LE(two.overall_mr, one.overall_mr + 1e-9);
}

// ---- Optimizer hardening ---------------------------------------------------
TEST(Hardening, DpRejectsNonFiniteCosts) {
  std::vector<std::vector<double>> cost = {{1.0, 0.5, 0.2}};
  cost[0][1] = std::nan("");
  EXPECT_THROW(optimize_partition(CostMatrix::from_rows(cost, 2).view(), 2),
               CheckError);
  cost[0][1] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(optimize_partition(CostMatrix::from_rows(cost, 2).view(), 2),
               CheckError);
}

TEST(Hardening, FootprintLoaderSurvivesFuzz) {
  // Random garbage must throw CheckError (or parse), never crash or
  // silently return a bogus curve with NaNs.
  std::string dir = std::filesystem::temp_directory_path().string();
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    std::string path = dir + "/ocps_fuzz_" + std::to_string(trial) + ".fp";
    {
      std::ofstream os(path);
      if (rng.chance(0.5)) os << "ocps-footprint 1\n";
      std::size_t len = rng.below(200);
      for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(32 + rng.below(95));
        os << (rng.chance(0.2) ? '\n' : c);
      }
    }
    try {
      FootprintFile f = load_footprint_file(path);
      // If it parsed, the curve must at least be structurally sound.
      EXPECT_GE(f.footprint.size(), 1u);
    } catch (const CheckError&) {
      // expected for malformed input
    }
    std::remove(path.c_str());
  }
}

TEST(Hardening, SchemeEvaluationRejectsOversizedIndices) {
  ProgramModel m = make_program_model(
      "m", 1.0, compute_footprint(make_cyclic(5000, 20)), 40);
  CoRunGroup g({&m});
  SharingScheme s;
  s.groups = {{5}};  // index out of range
  s.group_sizes = {40};
  EXPECT_THROW(evaluate_scheme(g, s), CheckError);
}

// ---- HOTL chain consistency -------------------------------------------------
TEST(HotlChain, MissRatioIntegratesBackToFillTime) {
  // im(c) = ft(c+1) - ft(c) and mr = 1/im: summing inter-miss times over
  // c = m0..m1 must reproduce the fill-time difference.
  FootprintCurve fp = compute_footprint(make_zipf(40000, 300, 0.9, 321));
  double acc = 0.0;
  for (std::size_t c = 50; c < 250; ++c) acc += inter_miss_time(fp, c);
  EXPECT_NEAR(acc, fill_time(fp, 250.0) - fill_time(fp, 50.0), 1e-6);
}

TEST(HotlChain, MissRatioIsReciprocalInterMissTime) {
  FootprintCurve fp = compute_footprint(make_uniform(40000, 200, 322));
  for (double c : {50.0, 100.0, 150.0}) {
    double im = inter_miss_time(fp, c);
    ASSERT_GT(im, 0.0);
    double mr_from_im = 1.0 / im;
    double mr_direct = hotl_miss_ratio(fp, c);
    // Eq. 8 vs Eq. 10: equal up to discretization of the window step.
    EXPECT_NEAR(mr_from_im, mr_direct, 0.02) << "c=" << c;
  }
}

}  // namespace
}  // namespace ocps
