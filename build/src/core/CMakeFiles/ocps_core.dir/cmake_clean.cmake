file(REMOVE_RECURSE
  "CMakeFiles/ocps_core.dir/baselines.cpp.o"
  "CMakeFiles/ocps_core.dir/baselines.cpp.o.d"
  "CMakeFiles/ocps_core.dir/composition.cpp.o"
  "CMakeFiles/ocps_core.dir/composition.cpp.o.d"
  "CMakeFiles/ocps_core.dir/dp_partition.cpp.o"
  "CMakeFiles/ocps_core.dir/dp_partition.cpp.o.d"
  "CMakeFiles/ocps_core.dir/elastic.cpp.o"
  "CMakeFiles/ocps_core.dir/elastic.cpp.o.d"
  "CMakeFiles/ocps_core.dir/group_sweep.cpp.o"
  "CMakeFiles/ocps_core.dir/group_sweep.cpp.o.d"
  "CMakeFiles/ocps_core.dir/objectives.cpp.o"
  "CMakeFiles/ocps_core.dir/objectives.cpp.o.d"
  "CMakeFiles/ocps_core.dir/partition_sharing.cpp.o"
  "CMakeFiles/ocps_core.dir/partition_sharing.cpp.o.d"
  "CMakeFiles/ocps_core.dir/performance.cpp.o"
  "CMakeFiles/ocps_core.dir/performance.cpp.o.d"
  "CMakeFiles/ocps_core.dir/phase_aware.cpp.o"
  "CMakeFiles/ocps_core.dir/phase_aware.cpp.o.d"
  "CMakeFiles/ocps_core.dir/program_model.cpp.o"
  "CMakeFiles/ocps_core.dir/program_model.cpp.o.d"
  "CMakeFiles/ocps_core.dir/sttw.cpp.o"
  "CMakeFiles/ocps_core.dir/sttw.cpp.o.d"
  "CMakeFiles/ocps_core.dir/suh.cpp.o"
  "CMakeFiles/ocps_core.dir/suh.cpp.o.d"
  "libocps_core.a"
  "libocps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
